// Static verification layer tests: one positive and one negative case per
// lint rule (ASC001..ASC012), the pipeline plan/describe bridge, the
// lint_before_activate gate, the lockdep analyzer against both its seeded
// self-test and real Mutexes on a live kernel (sequential and sharded), the
// cross-shard determinism auditor (ShardRaceAnalyzer + RunDigest
// certificates), and a drift guard keeping the STATIC_ANALYSIS.md rule
// table in sync with PipelineLinter::Rules().
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "src/core/pipeline.h"
#include "src/core/pipeline_verify.h"
#include "src/eden/analysis.h"
#include "src/eden/kernel.h"
#include "src/eden/monitor.h"
#include "src/eden/sync.h"
#include "src/eden/trace.h"
#include "src/eden/verify/lint.h"
#include "src/eden/verify/lockdep.h"
#include "src/eden/verify/shard_audit.h"
#include "src/eden/verify/topology.h"
#include "src/shell/shell.h"

namespace eden {
namespace {

using verify::EdgeSpec;
using verify::Flavor;
using verify::LintReport;
using verify::LockOrderAnalyzer;
using verify::PipelineLinter;
using verify::Severity;
using verify::StageSpec;
using verify::TopologySpec;

Uid U(uint64_t n) { return Uid(0, n); }

// source <- filter1 <- sink, the Figure 2 read-only shape. Lints clean.
TopologySpec ReadOnlyChain() {
  TopologySpec t;
  t.flavor = Flavor::kReadOnly;
  t.AddStage({.uid = U(1), .name = "source", .type = "VectorSource",
              .is_source = true, .passive_output = true});
  t.AddStage({.uid = U(2), .name = "filter1", .type = "ReadOnlyFilter",
              .active_input = true, .passive_output = true});
  t.AddStage({.uid = U(3), .name = "sink", .type = "PullSink",
              .is_sink = true, .active_input = true});
  t.Connect(U(1), U(2), EdgeSpec::Mode::kPull);
  t.Connect(U(2), U(3), EdgeSpec::Mode::kPull);
  return t;
}

// source -> filter1 -> sink, the §5 write-only dual. Lints clean.
TopologySpec WriteOnlyChain() {
  TopologySpec t;
  t.flavor = Flavor::kWriteOnly;
  t.AddStage({.uid = U(1), .name = "source", .type = "PushSource",
              .is_source = true, .active_output = true});
  t.AddStage({.uid = U(2), .name = "filter1", .type = "WriteOnlyFilter",
              .active_output = true, .passive_input = true});
  t.AddStage({.uid = U(3), .name = "sink", .type = "PushSink",
              .is_sink = true, .passive_input = true});
  t.Connect(U(1), U(2), EdgeSpec::Mode::kPush, "in");
  t.Connect(U(2), U(3), EdgeSpec::Mode::kPush, "in");
  return t;
}

TEST(LintTest, CleanChainsAreWellFormed) {
  for (const TopologySpec& t : {ReadOnlyChain(), WriteOnlyChain()}) {
    LintReport report = PipelineLinter().Lint(t);
    EXPECT_TRUE(report.ok()) << report.ToString();
    EXPECT_TRUE(report.diagnostics.empty()) << report.ToString();
    EXPECT_NE(report.ToString().find("topology is well-formed"),
              std::string::npos);
  }
}

TEST(LintTest, ASC001RejectsReadOnlyFanOut) {
  // A second reader pulling the same (server, channel) stream: §5 forbids it.
  TopologySpec t = ReadOnlyChain();
  t.AddStage({.uid = U(4), .name = "sink2", .type = "PullSink",
              .is_sink = true, .active_input = true});
  t.Connect(U(2), U(4), EdgeSpec::Mode::kPull);
  LintReport report = PipelineLinter().Lint(t);
  ASSERT_TRUE(report.HasRule("ASC001")) << report.ToString();
  EXPECT_GE(report.error_count(), 1u);
  EXPECT_NE(report.ToString().find("fan-out"), std::string::npos);
}

TEST(LintTest, ASC001AllowsCapabilityMediatedFanOut) {
  // Same wiring, but each reader presents a distinct capability UID — the
  // sanctioned §5 escape (OpenChannel mints one stream per consumer).
  TopologySpec t = ReadOnlyChain();
  t.AddStage({.uid = U(4), .name = "sink2", .type = "PullSink",
              .is_sink = true, .active_input = true});
  t.edges.pop_back();  // drop filter1 -> sink
  t.Connect(U(2), U(3), EdgeSpec::Mode::kPull, "out", U(100));
  t.Connect(U(2), U(4), EdgeSpec::Mode::kPull, "out", U(101));
  LintReport report = PipelineLinter().Lint(t);
  EXPECT_FALSE(report.HasRule("ASC001")) << report.ToString();
  EXPECT_TRUE(report.ok()) << report.ToString();
}

TEST(LintTest, ASC002RejectsWriteOnlyFanIn) {
  // A second writer pushing the same (acceptor, channel) stream: the
  // write-only dual of ASC001.
  TopologySpec t = WriteOnlyChain();
  t.AddStage({.uid = U(4), .name = "source2", .type = "PushSource",
              .is_source = true, .active_output = true});
  t.Connect(U(4), U(3), EdgeSpec::Mode::kPush, "in");
  LintReport report = PipelineLinter().Lint(t);
  ASSERT_TRUE(report.HasRule("ASC002")) << report.ToString();
  EXPECT_GE(report.error_count(), 1u);
  EXPECT_NE(report.ToString().find("fan-in"), std::string::npos);
}

TEST(LintTest, ASC002AllowsCapabilityMediatedFanIn) {
  TopologySpec t = WriteOnlyChain();
  t.AddStage({.uid = U(4), .name = "source2", .type = "PushSource",
              .is_source = true, .active_output = true});
  t.edges.pop_back();  // drop filter1 -> sink
  t.Connect(U(2), U(3), EdgeSpec::Mode::kPush, "in", U(100));
  t.Connect(U(4), U(3), EdgeSpec::Mode::kPush, "in", U(101));
  LintReport report = PipelineLinter().Lint(t);
  EXPECT_FALSE(report.HasRule("ASC002")) << report.ToString();
  EXPECT_TRUE(report.ok()) << report.ToString();
}

TEST(LintTest, ASC003RejectsCycles) {
  TopologySpec t = ReadOnlyChain();
  // sink feeds data back to the source: demand can never quiesce.
  t.Connect(U(3), U(1), EdgeSpec::Mode::kPush, "back");
  LintReport report = PipelineLinter().Lint(t);
  EXPECT_TRUE(report.HasRule("ASC003")) << report.ToString();
  EXPECT_FALSE(PipelineLinter().Lint(ReadOnlyChain()).HasRule("ASC003"));
}

TEST(LintTest, ASC004FlagsOrphanUnreachableAndDeadEnd) {
  // Orphan: declared but wired to nothing.
  TopologySpec orphan = ReadOnlyChain();
  orphan.AddStage({.uid = U(9), .name = "stray", .type = "ReadOnlyFilter",
                   .active_input = true, .passive_output = true});
  LintReport report = PipelineLinter().Lint(orphan);
  ASSERT_TRUE(report.HasRule("ASC004")) << report.ToString();
  EXPECT_NE(report.ToString().find("orphan"), std::string::npos);

  // Unreachable: wired, but no source transitively feeds it.
  TopologySpec unreachable = ReadOnlyChain();
  unreachable.AddStage({.uid = U(9), .name = "late", .type = "ReadOnlyFilter",
                        .active_input = true, .passive_output = true});
  unreachable.Connect(U(9), U(3), EdgeSpec::Mode::kPull, "side");
  report = PipelineLinter().Lint(unreachable);
  ASSERT_TRUE(report.HasRule("ASC004")) << report.ToString();
  EXPECT_NE(report.ToString().find("unreachable"), std::string::npos);

  // Dead end: reachable from a source but no sink observes it — a warning,
  // not an error (discarding data is legal, just suspicious).
  TopologySpec deadend = ReadOnlyChain();
  deadend.AddStage({.uid = U(9), .name = "drop", .type = "ReadOnlyFilter",
                    .active_input = true, .passive_output = true});
  deadend.Connect(U(1), U(9), EdgeSpec::Mode::kPull, "side", U(100));
  report = PipelineLinter().Lint(deadend);
  ASSERT_TRUE(report.HasRule("ASC004")) << report.ToString();
  EXPECT_EQ(report.error_count(), 0u) << report.ToString();
  EXPECT_GE(report.warning_count(), 1u);
  EXPECT_NE(report.ToString().find("dead-end"), std::string::npos);

  // Undeclared endpoint: a wire naming a stage the spec never declared.
  TopologySpec dangling = ReadOnlyChain();
  dangling.Connect(U(2), U(42), EdgeSpec::Mode::kPull, "side", U(100));
  report = PipelineLinter().Lint(dangling);
  ASSERT_TRUE(report.HasRule("ASC004")) << report.ToString();
  EXPECT_NE(report.ToString().find("undeclared"), std::string::npos);
}

TEST(LintTest, ASC005RejectsDuplicateCapabilityClaims) {
  TopologySpec t = ReadOnlyChain();
  t.AddStage({.uid = U(4), .name = "sink2", .type = "PullSink",
              .is_sink = true, .active_input = true});
  t.edges.pop_back();
  // Both readers present the *same* capability UID: they alias one stream
  // while claiming to be distinct.
  t.Connect(U(2), U(3), EdgeSpec::Mode::kPull, "out", U(100));
  t.Connect(U(2), U(4), EdgeSpec::Mode::kPull, "out", U(100));
  LintReport report = PipelineLinter().Lint(t);
  EXPECT_TRUE(report.HasRule("ASC005")) << report.ToString();
}

TEST(LintTest, ASC006ChecksRecoveryKnobConsistency) {
  // Enabled without a deadline: a lost reply parks the stream forever.
  TopologySpec t = ReadOnlyChain();
  t.recovery = {.enabled = true, .deadline = 0, .retry_attempts = 4,
                .retry_backoff = 100, .checkpoint_every = 8,
                .probe_interval = 500};
  LintReport report = PipelineLinter().Lint(t);
  ASSERT_TRUE(report.HasRule("ASC006")) << report.ToString();
  EXPECT_GE(report.error_count(), 1u);

  // Enabled without retries: deadlines convert hangs into data loss.
  t.recovery = {.enabled = true, .deadline = 1000, .retry_attempts = 0,
                .retry_backoff = 100, .checkpoint_every = 8,
                .probe_interval = 500};
  report = PipelineLinter().Lint(t);
  ASSERT_TRUE(report.HasRule("ASC006")) << report.ToString();
  EXPECT_GE(report.error_count(), 1u);

  // checkpoint_every == 0 is legal but replays the world: warning only.
  t.recovery = {.enabled = true, .deadline = 1000, .retry_attempts = 4,
                .retry_backoff = 100, .checkpoint_every = 0,
                .probe_interval = 500};
  report = PipelineLinter().Lint(t);
  EXPECT_TRUE(report.HasRule("ASC006")) << report.ToString();
  EXPECT_EQ(report.error_count(), 0u);
  EXPECT_GE(report.warning_count(), 1u);

  // Conventional discipline without a probe: both correspondents of a
  // crashed filter are passive, nothing reactivates it.
  t.flavor = Flavor::kConventional;
  t.recovery = {.enabled = true, .deadline = 1000, .retry_attempts = 4,
                .retry_backoff = 100, .checkpoint_every = 8,
                .probe_interval = 0};
  report = PipelineLinter().Lint(t);
  EXPECT_TRUE(report.HasRule("ASC006")) << report.ToString();
  EXPECT_GE(report.warning_count(), 1u);
  t.flavor = Flavor::kReadOnly;

  // Knobs set but recovery disabled: the effective_* gating ignores them.
  t.recovery = {.enabled = false, .deadline = 1000, .retry_attempts = 4,
                .retry_backoff = 100, .checkpoint_every = 8,
                .probe_interval = 500};
  report = PipelineLinter().Lint(t);
  EXPECT_TRUE(report.HasRule("ASC006")) << report.ToString();
  EXPECT_EQ(report.error_count(), 0u);

  // Fully consistent configuration: silent.
  t.recovery = {.enabled = true, .deadline = 1000, .retry_attempts = 4,
                .retry_backoff = 100, .checkpoint_every = 8,
                .probe_interval = 500};
  report = PipelineLinter().Lint(t);
  EXPECT_FALSE(report.HasRule("ASC006")) << report.ToString();
}

TEST(LintTest, ASC007RequiresDemandToReachLazyStages) {
  // A lazy source in a pull chain ending at an active sink is fine.
  TopologySpec good = ReadOnlyChain();
  good.stages[0].lazy = true;
  good.stages[1].lazy = true;
  EXPECT_FALSE(PipelineLinter().Lint(good).HasRule("ASC007"));

  // A lazy stage whose only path onward is a push wire: the Transfer that
  // would start it never arrives.
  TopologySpec bad;
  bad.flavor = Flavor::kMixed;
  bad.AddStage({.uid = U(1), .name = "source", .type = "VectorSource",
                .is_source = true, .passive_output = true,
                .active_output = true, .lazy = true});
  bad.AddStage({.uid = U(2), .name = "sink", .type = "PushSink",
                .is_sink = true, .passive_input = true});
  bad.Connect(U(1), U(2), EdgeSpec::Mode::kPush, "in");
  LintReport report = PipelineLinter().Lint(bad);
  ASSERT_TRUE(report.HasRule("ASC007")) << report.ToString();
  EXPECT_GE(report.error_count(), 1u);
}

TEST(LintTest, ASC008RejectsPortDisciplineMismatches) {
  // Pull wire from a stage with no passive output (nobody serves Transfer).
  TopologySpec t = ReadOnlyChain();
  t.stages[0].passive_output = false;
  LintReport report = PipelineLinter().Lint(t);
  EXPECT_TRUE(report.HasRule("ASC008")) << report.ToString();

  // Pull wire into a stage with no active input (nobody issues Transfer).
  t = ReadOnlyChain();
  t.stages[2].active_input = false;
  report = PipelineLinter().Lint(t);
  EXPECT_TRUE(report.HasRule("ASC008")) << report.ToString();

  // Push wire into a stage with no passive input (nobody accepts Push).
  t = WriteOnlyChain();
  t.stages[2].passive_input = false;
  report = PipelineLinter().Lint(t);
  EXPECT_TRUE(report.HasRule("ASC008")) << report.ToString();
}

TEST(LintTest, ASC009RejectsLowatAboveHiwat) {
  // Producers block at hiwat and are released only below lowat; with
  // lowat > hiwat the release condition is unreachable.
  TopologySpec t = WriteOnlyChain();
  t.stages[1].bounded = true;
  t.stages[1].hiwat = 4;
  t.stages[1].lowat = 9;
  LintReport report = PipelineLinter().Lint(t);
  ASSERT_TRUE(report.HasRule("ASC009")) << report.ToString();
  EXPECT_GE(report.error_count(), 1u);
  EXPECT_NE(report.ToString().find("lowat"), std::string::npos);
}

TEST(LintTest, ASC009RejectsZeroHiwatPassiveInput) {
  // hiwat 0 on a passive input withholds every Push reply forever: the
  // first datum deadlocks its producer.
  TopologySpec t = WriteOnlyChain();
  t.stages[2].bounded = true;
  t.stages[2].hiwat = 0;
  LintReport report = PipelineLinter().Lint(t);
  ASSERT_TRUE(report.HasRule("ASC009")) << report.ToString();
  EXPECT_GE(report.error_count(), 1u);
}

TEST(LintTest, ASC009AllowsLazyZeroHiwatOutput) {
  // hiwat 0 on a *lazy* passive output is §4's pure demand-driven mode,
  // not a misconfiguration.
  TopologySpec t = ReadOnlyChain();
  t.stages[0].lazy = true;
  t.stages[0].bounded = true;
  t.stages[0].hiwat = 0;
  LintReport report = PipelineLinter().Lint(t);
  EXPECT_FALSE(report.HasRule("ASC009")) << report.ToString();
  EXPECT_TRUE(report.ok()) << report.ToString();
}

TEST(LintTest, ASC009WarnsOnNonLazyZeroHiwat) {
  // The same zero hiwat without the lazy marking is probably a mistake
  // (the stage stalls until demand) but still runs: warning, not error.
  TopologySpec t = ReadOnlyChain();
  t.stages[0].bounded = true;
  t.stages[0].hiwat = 0;
  LintReport report = PipelineLinter().Lint(t);
  ASSERT_TRUE(report.HasRule("ASC009")) << report.ToString();
  EXPECT_GE(report.warning_count(), 1u);
  EXPECT_TRUE(report.ok()) << report.ToString();  // warnings don't reject
}

TEST(LintTest, RuleTableCoversAllTwelveRules) {
  const std::vector<PipelineLinter::RuleInfo>& rules = PipelineLinter::Rules();
  ASSERT_EQ(rules.size(), 12u);
  for (size_t i = 0; i < rules.size(); ++i) {
    char id[32];
    std::snprintf(id, sizeof(id), "ASC%03zu", i + 1);
    EXPECT_EQ(rules[i].id, id);
    EXPECT_FALSE(rules[i].summary.empty());
  }
}

TEST(LintTest, SummaryNamesLeadingErrors) {
  TopologySpec t = ReadOnlyChain();
  t.AddStage({.uid = U(4), .name = "sink2", .type = "PullSink",
              .is_sink = true, .active_input = true});
  t.Connect(U(2), U(4), EdgeSpec::Mode::kPull);
  LintReport report = PipelineLinter().Lint(t);
  std::string summary = report.Summary();
  EXPECT_NE(summary.find("ASC001"), std::string::npos) << summary;
}

// ---- Pipeline plan bridge (core/pipeline_verify).

PipelineOptions OptionsFor(Discipline d) {
  PipelineOptions options;
  options.discipline = d;
  return options;
}

TransformFactory Copy() {
  return MakeTransformFactory<LambdaTransform>(
      "copy", [](const Value& v, const Transform::EmitFn& emit) {
        emit(kChanOut, v);
      });
}

TEST(PipelinePlanTest, AllDisciplinesPlanClean) {
  for (Discipline d : {Discipline::kReadOnly, Discipline::kWriteOnly,
                       Discipline::kConventional}) {
    PipelineOptions options = OptionsFor(d);
    LintReport report = LintPipelinePlan(3, options);
    EXPECT_TRUE(report.ok()) << DisciplineName(d) << "\n" << report.ToString();
    EXPECT_TRUE(report.diagnostics.empty())
        << DisciplineName(d) << "\n" << report.ToString();

    // Recovery enabled with the default knobs is also consistent.
    options.recovery.enabled = true;
    report = LintPipelinePlan(3, options);
    EXPECT_TRUE(report.diagnostics.empty())
        << DisciplineName(d) << "\n" << report.ToString();
  }
  // §4 laziness plans clean too (ASC007 must see the demand chain).
  PipelineOptions lazy = OptionsFor(Discipline::kReadOnly);
  lazy.start_on_demand = true;
  EXPECT_TRUE(LintPipelinePlan(3, lazy).diagnostics.empty());
}

TEST(PipelinePlanTest, ASC009CatchesBadWatermarkKnobs) {
  // A lowat above the capacity-derived hiwat reaches the plan's stage
  // specs and is rejected before any Eject exists.
  PipelineOptions options = OptionsFor(Discipline::kWriteOnly);
  options.acceptor_capacity = 4;
  options.acceptor_lowat = 9;
  LintReport report = LintPipelinePlan(2, options);
  ASSERT_TRUE(report.HasRule("ASC009")) << report.ToString();
  EXPECT_FALSE(report.ok());

  // Same for the conventional pipes.
  PipelineOptions pipes = OptionsFor(Discipline::kConventional);
  pipes.pipe_capacity = 4;
  pipes.pipe_lowat = 9;
  report = LintPipelinePlan(2, pipes);
  ASSERT_TRUE(report.HasRule("ASC009")) << report.ToString();

  // And the activation gate refuses to build the bad plan.
  Kernel kernel;
  options.lint_before_activate = true;
  std::vector<TransformFactory> stages = {Copy()};
  PipelineHandle handle =
      BuildPipeline(kernel, {Value("x")}, stages, options);
  EXPECT_TRUE(handle.lint_rejected);
  EXPECT_TRUE(handle.lint.HasRule("ASC009")) << handle.lint.ToString();
  EXPECT_EQ(kernel.stats().ejects_created, 0u);
}

TEST(PipelinePlanTest, DescribePipelineMatchesAsBuilt) {
  Kernel kernel;
  PipelineOptions options = OptionsFor(Discipline::kConventional);
  std::vector<TransformFactory> stages = {Copy(), Copy()};
  ValueList input = {Value("a"), Value("b")};
  PipelineHandle handle = BuildPipeline(kernel, input, stages, options);
  kernel.Run();
  ASSERT_TRUE(handle.done());

  verify::TopologySpec spec = DescribePipeline(handle, options);
  ASSERT_EQ(spec.stages.size(), handle.ejects.size());
  for (size_t i = 0; i < spec.stages.size(); ++i) {
    EXPECT_EQ(spec.stages[i].uid, handle.ejects[i]);
    EXPECT_EQ(spec.stages[i].name, handle.stage_names[i]);
  }
  LintReport report = PipelineLinter().Lint(spec);
  EXPECT_TRUE(report.ok()) << report.ToString();
}

TEST(PipelinePlanTest, PlanNamesMatchBuiltStageNames) {
  for (Discipline d : {Discipline::kReadOnly, Discipline::kWriteOnly,
                       Discipline::kConventional}) {
    Kernel kernel;
    PipelineOptions options = OptionsFor(d);
    std::vector<TransformFactory> stages = {Copy(), Copy()};
    PipelineHandle handle =
        BuildPipeline(kernel, {Value("x")}, stages, options);
    verify::TopologySpec plan = PlanTopology(stages.size(), options);
    ASSERT_EQ(plan.stages.size(), handle.stage_names.size())
        << DisciplineName(d);
    for (size_t i = 0; i < plan.stages.size(); ++i) {
      EXPECT_EQ(plan.stages[i].name, handle.stage_names[i])
          << DisciplineName(d) << " stage " << i;
    }
    kernel.Run();
  }
}

// ---- The lint_before_activate gate.

TEST(LintGateTest, RejectsInconsistentRecoveryBeforeAnyEjectExists) {
  Kernel kernel;
  PipelineOptions options;
  options.lint_before_activate = true;
  options.recovery.enabled = true;
  options.recovery.deadline = 0;  // ASC006: enabled without a deadline
  std::vector<TransformFactory> stages = {Copy()};
  PipelineHandle handle =
      BuildPipeline(kernel, {Value("x")}, stages, options);
  EXPECT_TRUE(handle.lint_rejected);
  EXPECT_TRUE(handle.lint.HasRule("ASC006")) << handle.lint.ToString();
  EXPECT_TRUE(handle.ejects.empty());
  // The kernel was never perturbed: no Eject exists, nothing to run.
  EXPECT_EQ(kernel.stats().ejects_created, 0u);

  // RunPipeline under the same options returns empty instead of hanging.
  ValueList out = RunPipeline(kernel, {Value("x")}, stages, options);
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(kernel.stats().ejects_created, 0u);
}

TEST(LintGateTest, CleanPlanActivatesAndAttachesReport) {
  Kernel kernel;
  PipelineOptions options;
  options.lint_before_activate = true;
  std::vector<TransformFactory> stages = {Copy()};
  ValueList input = {Value("a"), Value("b"), Value("c")};
  PipelineHandle handle = BuildPipeline(kernel, input, stages, options);
  EXPECT_FALSE(handle.lint_rejected);
  EXPECT_TRUE(handle.lint.ok()) << handle.lint.ToString();
  kernel.Run();
  ASSERT_TRUE(handle.done());
  EXPECT_EQ(handle.output(), input);
}

// ---- Lockdep.

TEST(LockdepTest, SelfTestPasses) {
  std::string report;
  EXPECT_TRUE(LockOrderAnalyzer::SelfTest(&report)) << report;
  EXPECT_NE(report.find("inversion detected"), std::string::npos) << report;
}

// Two coroutines of one host nesting two mutexes in opposite orders. The
// runs don't overlap in this schedule — lockdep's point is that the *order
// graph* cycle already proves an interleaving exists that deadlocks.
class InvertedLocker : public Eject {
 public:
  explicit InvertedLocker(Kernel& kernel)
      : Eject(kernel, "InvertedLocker"), a_(*this, "A"), b_(*this, "B") {}

  Task<void> LockAB() {
    co_await a_.Lock();
    co_await b_.Lock();
    b_.Unlock();
    a_.Unlock();
  }
  Task<void> LockBA() {
    co_await b_.Lock();
    co_await a_.Lock();
    a_.Unlock();
    b_.Unlock();
  }

  Mutex a_;
  Mutex b_;
};

TEST(LockdepTest, RealMutexInversionIsReported) {
  Kernel kernel;
  TraceRecorder recorder;
  LockOrderAnalyzer analyzer;
  analyzer.set_trace_sink(recorder.Hook());
  kernel.set_lock_observer(&analyzer);

  InvertedLocker& host = kernel.CreateLocal<InvertedLocker>();
  host.Spawn(host.LockAB());
  kernel.Run();
  EXPECT_TRUE(analyzer.ok());  // AB alone establishes order, no cycle yet

  host.Spawn(host.LockBA());
  kernel.Run();
  ASSERT_EQ(analyzer.violations().size(), 1u) << analyzer.ToString();
  const LockOrderAnalyzer::LockViolation& v = analyzer.violations().front();
  EXPECT_EQ(v.kind, LockOrderAnalyzer::LockViolation::Kind::kOrderCycle);
  EXPECT_EQ(v.holder, host.uid());
  EXPECT_EQ(analyzer.locks_seen(), 2u);
  EXPECT_NE(analyzer.ToString().find("VIOLATIONS"), std::string::npos);

  // The violation doubled as a kViolation trace event, like the monitor's.
  bool traced = false;
  for (const TraceEvent& event : recorder.events()) {
    if (event.kind == TraceEvent::Kind::kViolation &&
        event.op.find("lock-order-cycle") != std::string::npos) {
      traced = true;
    }
  }
  EXPECT_TRUE(traced);

  kernel.set_lock_observer(nullptr);
}

TEST(LockdepTest, ConsistentOrderIsClean) {
  Kernel kernel;
  LockOrderAnalyzer analyzer;
  kernel.set_lock_observer(&analyzer);
  InvertedLocker& host = kernel.CreateLocal<InvertedLocker>();
  host.Spawn(host.LockAB());
  kernel.Run();
  host.Spawn(host.LockAB());  // same order twice: no inversion
  kernel.Run();
  EXPECT_TRUE(analyzer.ok()) << analyzer.ToString();
  kernel.set_lock_observer(nullptr);
}

class BlockingHolder : public Eject {
 public:
  explicit BlockingHolder(Kernel& kernel)
      : Eject(kernel, "BlockingHolder"), m_(*this, "M"), wake_(*this) {}

  Task<void> HoldAcrossWait() {
    co_await m_.Lock();
    co_await wake_.Wait();  // suspends with M held: the second hazard class
    m_.Unlock();
  }

  Mutex m_;
  CondVar wake_;
};

TEST(LockdepTest, SuspensionWithLockHeldIsReported) {
  Kernel kernel;
  LockOrderAnalyzer analyzer;
  kernel.set_lock_observer(&analyzer);
  BlockingHolder& host = kernel.CreateLocal<BlockingHolder>();
  host.Spawn(host.HoldAcrossWait());
  kernel.Run();
  ASSERT_EQ(analyzer.violations().size(), 1u) << analyzer.ToString();
  const LockOrderAnalyzer::LockViolation& v = analyzer.violations().front();
  EXPECT_EQ(v.kind,
            LockOrderAnalyzer::LockViolation::Kind::kHeldAcrossBlocking);
  EXPECT_NE(v.detail.find("condition wait"), std::string::npos) << v.detail;

  host.wake_.Notify();  // let the coroutine finish cleanly
  kernel.Run();
  EXPECT_FALSE(host.m_.locked());
  kernel.set_lock_observer(nullptr);
}

TEST(LockdepTest, MutexContentionItselfIsNotBlockingHazard) {
  // Waiting *for* a mutex is ordinary contention, not a held-across-blocking
  // hazard; only the order graph judges it. Two coroutines contending on one
  // mutex in a consistent order must stay clean.
  Kernel kernel;
  LockOrderAnalyzer analyzer;
  kernel.set_lock_observer(&analyzer);
  InvertedLocker& host = kernel.CreateLocal<InvertedLocker>();
  host.Spawn(host.LockAB());
  host.Spawn(host.LockAB());
  kernel.Run();
  EXPECT_TRUE(analyzer.ok()) << analyzer.ToString();
  EXPECT_FALSE(host.a_.locked());
  EXPECT_FALSE(host.b_.locked());
  kernel.set_lock_observer(nullptr);
}

// ---- Monitor and doctor wiring.

TEST(VerifyWiringTest, MonitorRecordsStaticFindings) {
  InvariantMonitor monitor;
  monitor.OnStaticFinding(5, Uid(0, 7), "ASC001 filter2: read-only fan-out");
  ASSERT_EQ(monitor.violations().size(), 1u);
  EXPECT_EQ(monitor.violations().front().kind,
            InvariantMonitor::Violation::Kind::kStatic);
  EXPECT_NE(monitor.violations().front().detail.find("ASC001"),
            std::string::npos);
}

TEST(VerifyWiringTest, DoctorVerdictCarriesLintOutcome) {
  Diagnosis clean;
  clean.verdict = "verdict: bottleneck: filter1, 80% of critical path";
  clean.AnnotateStatic(0, 0, "");
  // The CI grep for "verdict: bottleneck" must keep matching: the lint
  // outcome appends to the verdict line, never replaces it.
  EXPECT_NE(clean.verdict.find("verdict: bottleneck"), std::string::npos);
  EXPECT_NE(clean.verdict.find("lint clean"), std::string::npos);

  Diagnosis dirty;
  dirty.verdict = "verdict: bottleneck: filter1";
  dirty.AnnotateStatic(2, 1, "ASC001 at filter1, ASC006");
  EXPECT_NE(dirty.verdict.find("2 errors"), std::string::npos);
  EXPECT_NE(dirty.verdict.find("1 warning"), std::string::npos);
  EXPECT_NE(dirty.verdict.find("ASC001"), std::string::npos);
}

// ---- Shell integration.

std::string Joined(const ShellResult& r) {
  std::string out;
  for (const std::string& line : r.output) {
    out += line;
    out += "\n";
  }
  return out;
}

TEST(VerifyShellTest, PipelinesAreLintedAndReportedClean) {
  Kernel kernel;
  EdenShell shell(kernel);
  ShellResult r = shell.Run("echo a b | upper | collect");
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_TRUE(shell.last_lint().ok()) << shell.last_lint().ToString();
  EXPECT_FALSE(shell.last_topology().stages.empty());

  r = shell.Run("lint");
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_NE(Joined(r).find("topology is well-formed"), std::string::npos);
}

TEST(VerifyShellTest, ReportRedirectPipelinesLintClean) {
  // A report>WIN redirect adds a second output channel on one filter; the
  // distinct channel name keeps it off ASC001 (Figure 4's discipline).
  Kernel kernel;
  EdenShell shell(kernel);
  ASSERT_TRUE(shell.Run("echo a b | collect").ok);
  ShellResult r = shell.Run("echo x | upper | report 2 copy report>win | collect");
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_TRUE(shell.last_lint().ok()) << shell.last_lint().ToString();
}

TEST(VerifyShellTest, LintRulesListsTheRuleTable) {
  Kernel kernel;
  EdenShell shell(kernel);
  ShellResult r = shell.Run("lint rules");
  ASSERT_TRUE(r.ok) << r.error;
  ASSERT_EQ(r.output.size(), 12u);
  EXPECT_EQ(r.output.front().substr(0, 6), "ASC001");
  EXPECT_EQ(r.output.back().substr(0, 6), "ASC012");
}

TEST(VerifyShellTest, LintBeforeAnyPipelineExplainsItself) {
  Kernel kernel;
  EdenShell shell(kernel);
  ShellResult r = shell.Run("lint");
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_NE(Joined(r).find("no pipeline"), std::string::npos);
}

TEST(VerifyShellTest, LockdepCommandLifecycle) {
  Kernel kernel;
  EdenShell shell(kernel);
  ASSERT_TRUE(shell.Run("lockdep on").ok);
  ASSERT_TRUE(shell.Run("echo a b | upper | collect").ok);
  ShellResult r = shell.Run("lockdep show");
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_NE(Joined(r).find("no potential deadlocks"), std::string::npos);
  ASSERT_TRUE(shell.Run("lockdep clear").ok);
  ASSERT_TRUE(shell.Run("lockdep off").ok);
}

TEST(VerifyShellTest, LockdepSelfTestRunsFromTheShell) {
  Kernel kernel;
  EdenShell shell(kernel);
  ShellResult r = shell.Run("lockdep selftest");
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_NE(Joined(r).find("selftest passed"), std::string::npos);
}

TEST(VerifyShellTest, DoctorVerdictAnnotatedAfterLintedPipeline) {
  Kernel kernel;
  EdenShell shell(kernel);
  ASSERT_TRUE(shell.Run("trace on").ok);
  ASSERT_TRUE(shell.Run("echo a b c | upper | collect").ok);
  ShellResult r = shell.Run("doctor");
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_NE(Joined(r).find("lint clean"), std::string::npos) << Joined(r);
}

// Deterministic input for the audit runs (no RNG: the certificates are
// asserted byte-identical, so the workload itself must be a constant).
ValueList MakeAuditLines(int n) {
  ValueList items;
  items.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    items.push_back(Value("line " + std::to_string(i)));
  }
  return items;
}

// ---- Concurrency lints (ASC010-ASC012).

// ReadOnlyChain with nodes 1..3 and the concurrency context armed. At the
// default cost model every node-to-node edge costs invocation_send (100) +
// cross_node_latency (400) = 500 when it crosses a shard.
TopologySpec ShardedChain(int shards, Tick lookahead) {
  TopologySpec t = ReadOnlyChain();
  for (size_t i = 0; i < t.stages.size(); ++i) {
    t.stages[i].node = static_cast<NodeId>(i + 1);
  }
  t.has_concurrency = true;
  t.shards = shards;
  t.lookahead = lookahead;
  return t;
}

TEST(LintTest, ASC010RejectsLookaheadAboveMinCrossShardCost) {
  TopologySpec t = ShardedChain(2, 600);  // > 500: the kernel would abort
  LintReport report = PipelineLinter().Lint(t);
  ASSERT_TRUE(report.HasRule("ASC010")) << report.ToString();
  EXPECT_GE(report.error_count(), 1u);
  EXPECT_FALSE(report.ok());
  EXPECT_NE(report.ToString().find("abort"), std::string::npos);
}

TEST(LintTest, ASC010AllowsLookaheadAtTheBound) {
  // lookahead == min cross-shard cost is exactly safe: no error, and no
  // ASC012 headroom warning either (nothing larger is derivable).
  TopologySpec t = ShardedChain(2, 500);
  LintReport report = PipelineLinter().Lint(t);
  EXPECT_FALSE(report.HasRule("ASC010")) << report.ToString();
  EXPECT_FALSE(report.HasRule("ASC012")) << report.ToString();
}

TEST(LintTest, ConcurrencyRulesStaySilentWithoutContext) {
  // The same shape without has_concurrency (a bare wiring spec, the legacy
  // plan bridge): ASC010-ASC012 must not fire regardless of placement.
  TopologySpec t = ShardedChain(2, 600);
  t.has_concurrency = false;
  LintReport report = PipelineLinter().Lint(t);
  EXPECT_TRUE(report.ok()) << report.ToString();
  EXPECT_TRUE(report.diagnostics.empty()) << report.ToString();
}

TEST(LintTest, ASC011WarnsOnRoundRobinCuttingEveryEdge) {
  // Nodes 1,2,3 round-robin on 2 shards: both edges cross, but 2 shards
  // need only 1 cut of a connected chain.
  TopologySpec t = ShardedChain(2, 0);
  LintReport report = PipelineLinter().Lint(t);
  ASSERT_TRUE(report.HasRule("ASC011")) << report.ToString();
  EXPECT_GE(report.warning_count(), 1u);
  EXPECT_TRUE(report.ok());  // warning, not error
  EXPECT_NE(report.ToString().find("partition_shard"), std::string::npos);
}

TEST(LintTest, ASC011AllowsCoLocatedPlacement) {
  // Shard hints pin the whole chain to shard 0: no edge is cut.
  TopologySpec t = ShardedChain(2, 0);
  for (StageSpec& stage : t.stages) {
    stage.shard_hint = 0;
  }
  LintReport report = PipelineLinter().Lint(t);
  EXPECT_FALSE(report.HasRule("ASC011")) << report.ToString();
}

TEST(LintTest, ASC012SuggestsLargerSafeLookahead) {
  // lookahead 0 derives the conservative invocation_send default (100),
  // but every cross-shard edge costs >= 500: the warning names the bound.
  TopologySpec t = ShardedChain(2, 0);
  LintReport report = PipelineLinter().Lint(t);
  ASSERT_TRUE(report.HasRule("ASC012")) << report.ToString();
  bool named_bound = false;
  for (const verify::LintDiagnostic& diag : report.diagnostics) {
    if (diag.rule == "ASC012") {
      named_bound = named_bound ||
                    diag.fix_hint.find("500") != std::string::npos;
    }
  }
  EXPECT_TRUE(named_bound) << report.ToString();
}

TEST(LintTest, ASC012SilentWhenNoEdgeCrossesShards) {
  // One shard (or a fully co-located placement): no cross-shard edge, no
  // derivable bound, no warning.
  TopologySpec one = ShardedChain(1, 0);
  EXPECT_FALSE(PipelineLinter().Lint(one).HasRule("ASC012"));
  TopologySpec pinned = ShardedChain(4, 0);
  for (StageSpec& stage : pinned.stages) {
    stage.shard_hint = 2;
  }
  EXPECT_FALSE(PipelineLinter().Lint(pinned).HasRule("ASC012"));
}

// ---- The Kernel-aware plan bridge.

TEST(PipelinePlanTest, KernelOverloadCarriesConcurrencyContext) {
  KernelOptions kernel_options;
  kernel_options.shards = 4;
  Kernel kernel(kernel_options);
  PipelineOptions options = OptionsFor(Discipline::kReadOnly);
  options.distinct_nodes = true;
  verify::TopologySpec spec = PlanTopology(2, options, kernel);
  EXPECT_TRUE(spec.has_concurrency);
  EXPECT_EQ(spec.shards, 4);
  ASSERT_EQ(spec.stages.size(), 4u);  // source, filter1, filter2, sink
  for (size_t i = 0; i < spec.stages.size(); ++i) {
    EXPECT_EQ(spec.stages[i].node, static_cast<NodeId>(i + 1));
  }
  // Same options on a 1-shard kernel: context armed but nothing to cut.
  Kernel sequential;
  verify::TopologySpec flat = PlanTopology(2, options, sequential);
  EXPECT_TRUE(flat.has_concurrency);
  EXPECT_EQ(flat.shards, 1);
  EXPECT_TRUE(PipelineLinter().Lint(flat).diagnostics.empty());
}

TEST(LintGateTest, SeededLookaheadUndercutIsCaughtBeforeActivation) {
  // KernelOptions::lookahead = 1000 on a 4-shard kernel exceeds every
  // cross-shard edge cost (500 at defaults): before this rule existed the
  // run would std::abort() on the first undercut. The gate must catch it
  // statically — no Eject created, no runtime abort.
  KernelOptions kernel_options;
  kernel_options.shards = 4;
  kernel_options.lookahead = 1000;
  Kernel kernel(kernel_options);
  PipelineOptions options = OptionsFor(Discipline::kReadOnly);
  options.distinct_nodes = true;
  options.lint_before_activate = true;
  std::vector<TransformFactory> stages = {Copy(), Copy()};
  PipelineHandle handle =
      BuildPipeline(kernel, {Value("x"), Value("y")}, stages, options);
  EXPECT_TRUE(handle.lint_rejected);
  EXPECT_TRUE(handle.lint.HasRule("ASC010")) << handle.lint.ToString();
  EXPECT_EQ(kernel.stats().ejects_created, 0u);

  // The same plan with a safe lookahead activates.
  KernelOptions safe_options;
  safe_options.shards = 4;
  safe_options.lookahead = 500;
  Kernel safe(safe_options);
  PipelineHandle ok_handle =
      BuildPipeline(safe, {Value("x"), Value("y")}, stages, options);
  EXPECT_FALSE(ok_handle.lint_rejected) << ok_handle.lint.ToString();
  safe.Run();
  EXPECT_TRUE(ok_handle.done());
}

// ---- The runtime happens-before checker (ShardRaceAnalyzer).

using verify::AuditViolation;
using verify::RunDigest;
using verify::ShardRaceAnalyzer;

TEST(ShardAuditTest, RuntimeUndercutIsReportedNotAborted) {
  // The same seeded undercut as above, injected at runtime (no lint gate).
  // With the auditor installed the kernel reports each undercut and clamps
  // the delivery instead of calling std::abort(): the run completes, all
  // items arrive, and the violations are on record in the analyzer, the
  // monitor (kShardRace) and the trace (kViolation).
  KernelOptions kernel_options;
  kernel_options.shards = 4;
  kernel_options.lookahead = 1000;
  Kernel kernel(kernel_options);
  ShardRaceAnalyzer auditor;
  TraceRecorder recorder;
  InvariantMonitor monitor;
  auditor.set_trace_sink(recorder.Hook());
  auditor.set_monitor(&monitor);
  kernel.set_auditor(&auditor);

  PipelineOptions options = OptionsFor(Discipline::kReadOnly);
  options.distinct_nodes = true;
  std::vector<TransformFactory> stages = {Copy(), Copy()};
  ValueList input;
  for (int i = 0; i < 40; ++i) {
    input.push_back(Value("item" + std::to_string(i)));
  }
  PipelineHandle handle = BuildPipeline(kernel, input, stages, options);
  kernel.RunUntil([&handle] { return handle.done(); });
  EXPECT_TRUE(kernel.Run());

  EXPECT_EQ(handle.output().size(), input.size());
  ASSERT_GT(auditor.violation_count(), 0u) << auditor.ToString();
  bool undercut = false;
  for (const AuditViolation& v : auditor.Violations()) {
    undercut = undercut || v.kind == AuditViolation::Kind::kWindowUndercut;
  }
  EXPECT_TRUE(undercut) << auditor.ToString();
  EXPECT_FALSE(auditor.ok());
  EXPECT_FALSE(auditor.Digest().certified());

  bool monitored = false;
  for (const InvariantMonitor::Violation& v : monitor.violations()) {
    monitored =
        monitored || v.kind == InvariantMonitor::Violation::Kind::kShardRace;
  }
  EXPECT_TRUE(monitored);
  bool traced = false;
  for (const TraceEvent& event : recorder.events()) {
    if (event.kind == TraceEvent::Kind::kViolation &&
        event.op.find("shard-race") != std::string::npos) {
      traced = true;
    }
  }
  EXPECT_TRUE(traced);
}

// One figure-2 run under the auditor; returns the certificate JSON.
std::string CertifiedFig2(int shards, int items) {
  KernelOptions kernel_options;
  kernel_options.shards = shards;
  Kernel kernel(kernel_options);
  ShardRaceAnalyzer auditor;
  kernel.set_auditor(&auditor);
  PipelineOptions options = OptionsFor(Discipline::kReadOnly);
  options.distinct_nodes = true;
  std::vector<TransformFactory> stages = {Copy(), Copy()};
  PipelineHandle handle = BuildPipeline(
      kernel, MakeAuditLines(items), stages, options);
  kernel.RunUntil([&handle] { return handle.done(); });
  EXPECT_TRUE(kernel.Run());
  EXPECT_TRUE(auditor.ok()) << auditor.ToString();
  return auditor.ToJson();
}

TEST(ShardAuditTest, Fig2CertificatesAreByteIdenticalAcrossShardCounts) {
  const int items = 60;
  std::string base = CertifiedFig2(1, items);
  EXPECT_NE(base.find("eden-run-digest-v1"), std::string::npos);
  EXPECT_NE(base.find("\"violations\": 0"), std::string::npos);
  for (int shards : {2, 4, 8}) {
    SCOPED_TRACE("shards=" + std::to_string(shards));
    EXPECT_EQ(CertifiedFig2(shards, items), base);
  }
}

TEST(ShardAuditTest, PerturbedDigestFailsLoudly) {
  KernelOptions kernel_options;
  kernel_options.shards = 2;
  Kernel kernel(kernel_options);
  ShardRaceAnalyzer auditor;
  kernel.set_auditor(&auditor);
  PipelineOptions options = OptionsFor(Discipline::kReadOnly);
  options.distinct_nodes = true;
  std::vector<TransformFactory> stages = {Copy()};
  PipelineHandle handle =
      BuildPipeline(kernel, MakeAuditLines(20), stages, options);
  kernel.RunUntil([&handle] { return handle.done(); });
  kernel.Run();

  RunDigest actual = auditor.Digest();
  ASSERT_TRUE(actual.certified());
  EXPECT_TRUE(RunDigest::Compare(actual, actual).empty());

  RunDigest perturbed = actual;
  perturbed.merged ^= 1;  // one flipped bit must be loud
  std::string mismatch = RunDigest::Compare(perturbed, actual);
  ASSERT_FALSE(mismatch.empty());
  EXPECT_NE(mismatch.find("mismatch"), std::string::npos) << mismatch;

  // The --expect-digest form: exact hex passes, a perturbed hex fails
  // naming both digests, and an uncertified run never passes.
  char hex[19];
  std::snprintf(hex, sizeof(hex), "0x%016llx",
                static_cast<unsigned long long>(actual.merged));
  EXPECT_TRUE(RunDigest::ExpectDigest(actual, hex).empty());
  std::snprintf(hex, sizeof(hex), "0x%016llx",
                static_cast<unsigned long long>(actual.merged ^ 1));
  std::string failed = RunDigest::ExpectDigest(actual, hex);
  ASSERT_FALSE(failed.empty());
  EXPECT_NE(failed.find("digest mismatch"), std::string::npos) << failed;
  EXPECT_FALSE(RunDigest::ExpectDigest(actual, "zzz").empty());

  RunDigest uncertified = actual;
  uncertified.violations = 2;
  std::snprintf(hex, sizeof(hex), "0x%016llx",
                static_cast<unsigned long long>(uncertified.merged));
  std::string rejected = RunDigest::ExpectDigest(uncertified, hex);
  ASSERT_FALSE(rejected.empty());
  EXPECT_NE(rejected.find("NOT certified"), std::string::npos) << rejected;
}

TEST(ShardAuditTest, PartitionPlacementEliminatesCrossShardSendsByteIdentically) {
  // The ASC011 fix: partition_shard pins the whole chain to one shard.
  // Output, virtual time and the determinism certificate are unchanged
  // (placement never enters event keys); only cross_shard_sends collapses.
  auto run = [](int partition_shard, uint64_t& cross_sends,
                std::string& certificate) {
    KernelOptions kernel_options;
    kernel_options.shards = 4;
    Kernel kernel(kernel_options);
    ShardRaceAnalyzer auditor;
    kernel.set_auditor(&auditor);
    PipelineOptions options = OptionsFor(Discipline::kReadOnly);
    options.distinct_nodes = true;
    options.partition_shard = partition_shard;
    std::vector<TransformFactory> stages = {Copy(), Copy()};
    PipelineHandle handle =
        BuildPipeline(kernel, MakeAuditLines(60), stages, options);
    kernel.RunUntil([&handle] { return handle.done(); });
    kernel.Run();
    cross_sends = 0;
    for (const ShardCounters& c : kernel.shard_counters()) {
      cross_sends += c.cross_shard_sends;
    }
    certificate = auditor.ToJson();
    struct Result {
      ValueList output;
      Tick virtual_time;
    };
    return Result{handle.output(), kernel.now()};
  };

  uint64_t spread_sends = 0, pinned_sends = 0;
  std::string spread_cert, pinned_cert;
  auto spread = run(-1, spread_sends, spread_cert);
  auto pinned = run(1, pinned_sends, pinned_cert);
  EXPECT_EQ(pinned.output, spread.output);
  EXPECT_EQ(pinned.virtual_time, spread.virtual_time);
  EXPECT_EQ(pinned_cert, spread_cert);
  EXPECT_GT(spread_sends, 0u);   // round-robin cuts every edge
  EXPECT_EQ(pinned_sends, 0u);   // co-located chain never crosses
}

// ---- Lockdep under a sharded kernel (the analyzer is installed while
// workers run in parallel; violations must surface identically).

TEST(LockdepTest, InversionIsReportedUnderShardedKernels) {
  for (int shards : {2, 4}) {
    SCOPED_TRACE("shards=" + std::to_string(shards));
    KernelOptions kernel_options;
    kernel_options.shards = shards;
    Kernel kernel(kernel_options);
    LockOrderAnalyzer analyzer;
    kernel.set_lock_observer(&analyzer);
    InvertedLocker& host = kernel.CreateLocal<InvertedLocker>();
    host.Spawn(host.LockAB());
    kernel.Run();
    host.Spawn(host.LockBA());
    kernel.Run();
    ASSERT_EQ(analyzer.violations().size(), 1u) << analyzer.ToString();
    EXPECT_EQ(analyzer.violations().front().kind,
              LockOrderAnalyzer::LockViolation::Kind::kOrderCycle);
    kernel.set_lock_observer(nullptr);
  }
}

TEST(VerifyShellTest, LockdepSelfTestRunsUnderShardedKernels) {
  for (int shards : {2, 4}) {
    SCOPED_TRACE("shards=" + std::to_string(shards));
    KernelOptions kernel_options;
    kernel_options.shards = shards;
    Kernel kernel(kernel_options);
    EdenShell shell(kernel);
    ShellResult r = shell.Run("lockdep selftest");
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_NE(Joined(r).find("selftest passed"), std::string::npos);
  }
}

// ---- The shell's audit command.

TEST(VerifyShellTest, AuditCommandLifecycle) {
  KernelOptions kernel_options;
  kernel_options.shards = 2;
  Kernel kernel(kernel_options);
  EdenShell shell(kernel);
  ASSERT_TRUE(shell.Run("audit on").ok);
  ASSERT_TRUE(shell.Run("echo a b c | upper | collect").ok);
  ShellResult r = shell.Run("audit show");
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_NE(Joined(r).find("run digest"), std::string::npos) << Joined(r);
  EXPECT_NE(Joined(r).find("certified deterministic"), std::string::npos);
  r = shell.Run("audit json");
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_NE(Joined(r).find("eden-run-digest-v1"), std::string::npos);
  ShellResult bad = shell.Run("audit save /nonexistent-dir/audit.json");
  EXPECT_FALSE(bad.ok);
  EXPECT_NE(bad.error.find("audit save: cannot open file"), std::string::npos)
      << bad.error;
  ASSERT_TRUE(shell.Run("audit clear").ok);
  EXPECT_EQ(shell.audit().events(), 0u);
  ASSERT_TRUE(shell.Run("audit off").ok);
  EXPECT_FALSE(shell.Run("audit frobnicate").ok);
}

TEST(VerifyShellTest, DoctorVerdictCarriesAuditOutcome) {
  KernelOptions kernel_options;
  kernel_options.shards = 2;
  Kernel kernel(kernel_options);
  EdenShell shell(kernel);
  ASSERT_TRUE(shell.Run("trace on").ok);
  ASSERT_TRUE(shell.Run("audit on").ok);
  ASSERT_TRUE(shell.Run("echo a b c | upper | collect").ok);
  ShellResult r = shell.Run("doctor");
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_NE(Joined(r).find("audit certified (digest 0x"), std::string::npos)
      << Joined(r);
}

TEST(VerifyWiringTest, MonitorRecordsShardRaces) {
  InvariantMonitor monitor;
  monitor.OnShardRace(42, Uid(), "window-undercut on shard 1: ...");
  ASSERT_EQ(monitor.violations().size(), 1u);
  EXPECT_EQ(monitor.violations().front().kind,
            InvariantMonitor::Violation::Kind::kShardRace);
  EXPECT_NE(monitor.ToString().find("shard-race"), std::string::npos);
}

TEST(VerifyWiringTest, DoctorVerdictCarriesAuditAnnotation) {
  Diagnosis certified;
  certified.verdict = "verdict: bottleneck: filter1";
  certified.AnnotateAudit(1234, 0, "0x00000000deadbeef");
  EXPECT_NE(certified.verdict.find("verdict: bottleneck"), std::string::npos);
  EXPECT_NE(certified.verdict.find("audit certified (digest 0x00000000deadbeef)"),
            std::string::npos);

  Diagnosis raced;
  raced.verdict = "verdict: bottleneck: filter1";
  raced.AnnotateAudit(1234, 2, "0x00000000deadbeef");
  EXPECT_NE(raced.verdict.find("audit: 2 shard-race violations"),
            std::string::npos);
}

// ---- Doc drift guard: STATIC_ANALYSIS.md's rule table vs Rules().

TEST(DocDriftTest, StaticAnalysisDocMatchesRuleTable) {
  // EDEN_SOURCE_DIR is stamped by tests/CMakeLists.txt. Every rule in
  // PipelineLinter::Rules() must appear as a table row `| ASCNNN | sev |`
  // whose severity cell names the rule's worst severity, and the doc must
  // not list rules the linter no longer has.
  std::ifstream doc(std::string(EDEN_SOURCE_DIR) + "/STATIC_ANALYSIS.md");
  ASSERT_TRUE(doc.is_open()) << "cannot open STATIC_ANALYSIS.md";
  std::map<std::string, std::string> doc_severity;  // id -> severity cell
  std::string line;
  while (std::getline(doc, line)) {
    if (line.rfind("| ASC", 0) != 0) {
      continue;
    }
    size_t id_end = line.find(' ', 2);
    ASSERT_NE(id_end, std::string::npos) << line;
    std::string id = line.substr(2, id_end - 2);
    size_t sev_start = line.find('|', 1);
    ASSERT_NE(sev_start, std::string::npos) << line;
    size_t sev_end = line.find('|', sev_start + 1);
    ASSERT_NE(sev_end, std::string::npos) << line;
    doc_severity[id] = line.substr(sev_start + 1, sev_end - sev_start - 1);
  }
  const std::vector<PipelineLinter::RuleInfo>& rules = PipelineLinter::Rules();
  EXPECT_EQ(doc_severity.size(), rules.size())
      << "STATIC_ANALYSIS.md rule table and PipelineLinter::Rules() have "
         "drifted apart";
  for (const PipelineLinter::RuleInfo& rule : rules) {
    auto it = doc_severity.find(std::string(rule.id));
    ASSERT_NE(it, doc_severity.end())
        << rule.id << " missing from STATIC_ANALYSIS.md";
    EXPECT_NE(it->second.find(verify::SeverityName(rule.worst)),
              std::string::npos)
        << rule.id << ": doc severity cell '" << it->second
        << "' does not mention '" << verify::SeverityName(rule.worst) << "'";
  }
}

}  // namespace
}  // namespace eden
