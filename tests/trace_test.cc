// Trace facility tests: event capture, filtering, rendering, ring-buffer
// bounds, and the causal span index.
#include <gtest/gtest.h>

#include <algorithm>

#include "src/core/endpoints.h"
#include "src/core/pipeline.h"
#include "src/eden/fault.h"
#include "src/eden/kernel.h"
#include "src/eden/trace.h"

namespace eden {
namespace {

std::vector<TransformFactory> Copies(size_t n) {
  std::vector<TransformFactory> chain;
  for (size_t i = 0; i < n; ++i) {
    chain.push_back([] {
      return std::make_unique<LambdaTransform>(
          "copy", [](const Value& v, const Transform::EmitFn& emit) {
            emit(kChanOut, v);
          });
    });
  }
  return chain;
}

TEST(TraceTest, CapturesInvocationAndReplyPairs) {
  Kernel kernel;
  TraceRecorder recorder;
  kernel.set_tracer(recorder.Hook());
  VectorSource& source = kernel.CreateLocal<VectorSource>(
      ValueList{Value("a"), Value("b")});
  PullSink& sink = kernel.CreateLocal<PullSink>(source.uid(),
                                                Value(std::string(kChanOut)));
  kernel.RunUntil([&] { return sink.done(); });

  size_t invokes = 0;
  size_t replies = 0;
  for (const TraceEvent& event : recorder.events()) {
    if (event.kind == TraceEvent::Kind::kInvoke) {
      invokes++;
      EXPECT_EQ(event.op, "Transfer");
      EXPECT_EQ(event.from, sink.uid());
      EXPECT_EQ(event.to, source.uid());
    } else {
      replies++;
      EXPECT_TRUE(event.ok);
    }
  }
  EXPECT_EQ(invokes, replies);
  EXPECT_GE(invokes, 2u);
  // Timestamps are monotone.
  for (size_t i = 1; i < recorder.events().size(); ++i) {
    EXPECT_GE(recorder.events()[i].at, recorder.events()[i - 1].at);
  }
}

TEST(TraceTest, FilterOpsKeepsMatchingPairs) {
  Kernel kernel;
  TraceRecorder recorder;
  kernel.set_tracer(recorder.Hook());
  VectorSource& source = kernel.CreateLocal<VectorSource>(ValueList{Value("x")});
  (void)kernel.InvokeAndRun(source.uid(), std::string(kOpOpenChannel),
                            Value().Set(std::string(kFieldName),
                                        Value(std::string(kChanOut))));
  PullSink& sink = kernel.CreateLocal<PullSink>(source.uid(),
                                                Value(std::string(kChanOut)));
  kernel.RunUntil([&] { return sink.done(); });

  recorder.FilterOps({"OpenChannel"});
  ASSERT_EQ(recorder.size(), 2u);  // the OpenChannel and its reply
  EXPECT_EQ(recorder.events()[0].op, "OpenChannel");
  EXPECT_EQ(recorder.events()[1].kind, TraceEvent::Kind::kReply);
}

TEST(TraceTest, RenderShowsLabelsAndArrows) {
  Kernel kernel;
  TraceRecorder recorder;
  kernel.set_tracer(recorder.Hook());
  VectorSource& source = kernel.CreateLocal<VectorSource>(ValueList{Value("x")});
  PullSink& sink = kernel.CreateLocal<PullSink>(source.uid(),
                                                Value(std::string(kChanOut)));
  kernel.RunUntil([&] { return sink.done(); });
  recorder.Label(source.uid(), "source");
  recorder.Label(sink.uid(), "sink");

  std::string chart = recorder.Render();
  EXPECT_NE(chart.find("source"), std::string::npos);
  EXPECT_NE(chart.find("sink"), std::string::npos);
  EXPECT_NE(chart.find("Transfer"), std::string::npos);
  EXPECT_NE(chart.find('>'), std::string::npos);
  EXPECT_NE(chart.find("t="), std::string::npos);
}

TEST(TraceTest, RenderTruncatesLongTraces) {
  Kernel kernel;
  TraceRecorder recorder;
  kernel.set_tracer(recorder.Hook());
  ValueList many;
  for (int i = 0; i < 50; ++i) {
    many.push_back(Value(int64_t{i}));
  }
  VectorSource& source = kernel.CreateLocal<VectorSource>(std::move(many));
  PullSink& sink = kernel.CreateLocal<PullSink>(source.uid(),
                                                Value(std::string(kChanOut)));
  kernel.RunUntil([&] { return sink.done(); });
  std::string chart = recorder.Render(/*max_rows=*/5);
  EXPECT_NE(chart.find("more events"), std::string::npos);
}

TEST(TraceTest, EmptyTraceRenders) {
  TraceRecorder recorder;
  EXPECT_EQ(recorder.Render(), "(no events)\n");
}

TEST(TraceTest, DropAndTimeoutAreRecordedAndRendered) {
  Kernel kernel;
  FaultPlan plan;
  plan.drop_invocation = 1.0;  // every inter-Eject invocation is lost
  FaultInjector injector(plan);
  kernel.set_fault_injector(&injector);
  TraceRecorder recorder;
  kernel.set_tracer(recorder.Hook());

  VectorSource& source = kernel.CreateLocal<VectorSource>(ValueList{Value("x")});
  PullSink::Options options;
  options.deadline = 500;
  PullSink& sink = kernel.CreateLocal<PullSink>(
      source.uid(), Value(std::string(kChanOut)), options);
  kernel.RunUntil([&] { return sink.done(); });

  size_t drops = 0;
  size_t timeouts = 0;
  for (const TraceEvent& event : recorder.events()) {
    drops += event.kind == TraceEvent::Kind::kDrop ? 1 : 0;
    timeouts += event.kind == TraceEvent::Kind::kTimeout ? 1 : 0;
  }
  ASSERT_GE(drops, 1u);
  ASSERT_GE(timeouts, 1u);

  // The span remembers both fates.
  auto spans = recorder.SpanIndex();
  bool saw_doomed = false;
  for (const auto& [id, span] : spans) {
    if (span.dropped) {
      saw_doomed = true;
      EXPECT_TRUE(span.timed_out);
      EXPECT_EQ(span.to, source.uid());
    }
  }
  EXPECT_TRUE(saw_doomed);

  std::string chart = recorder.Render();
  EXPECT_NE(chart.find("LOST Transfer"), std::string::npos);
  EXPECT_NE(chart.find("deadline"), std::string::npos);
}

TEST(TraceTest, CrashRendersAsSelfMarker) {
  Kernel kernel;
  TraceRecorder recorder;
  kernel.set_tracer(recorder.Hook());
  Uid source = kernel.CreateLocal<VectorSource>(ValueList{Value("x")}).uid();
  kernel.Run();
  kernel.Crash(source);  // destroys the Eject; only the uid stays valid

  bool saw_crash = false;
  for (const TraceEvent& event : recorder.events()) {
    if (event.kind == TraceEvent::Kind::kCrash) {
      saw_crash = true;
      EXPECT_EQ(event.from, source);
      EXPECT_EQ(event.to, source);
      EXPECT_EQ(event.op, "VectorSource");
    }
  }
  ASSERT_TRUE(saw_crash);
  EXPECT_NE(recorder.Render().find("CRASH VectorSource"), std::string::npos);
}

TEST(TraceTest, RingBufferEvictsOldestAndCounts) {
  TraceRecorder recorder(4);
  Tracer hook = recorder.Hook();
  for (uint64_t i = 1; i <= 10; ++i) {
    TraceEvent event;
    event.kind = TraceEvent::Kind::kInvoke;
    event.id = i;
    event.at = static_cast<Tick>(i);
    event.op = "Op";
    hook(event);
  }
  EXPECT_EQ(recorder.size(), 4u);
  EXPECT_EQ(recorder.events_dropped(), 6u);
  EXPECT_EQ(recorder.events().front().id, 7u);  // oldest retained
  EXPECT_EQ(recorder.events().back().id, 10u);

  recorder.set_capacity(2);  // shrinking evicts immediately
  EXPECT_EQ(recorder.size(), 2u);
  EXPECT_EQ(recorder.events_dropped(), 8u);
  EXPECT_EQ(recorder.events().front().id, 9u);

  recorder.Clear();
  EXPECT_EQ(recorder.size(), 0u);
  EXPECT_EQ(recorder.events_dropped(), 0u);
}

// Ring eviction can strand a span whose parent's kInvoke was dropped: the
// index must re-root it (parent = 0, orphaned flag set) rather than leave a
// dangling parent id, and links between surviving spans must stay intact.
TEST(TraceTest, SpanIndexReRootsSpansWithEvictedParents) {
  TraceRecorder recorder(2);
  Tracer hook = recorder.Hook();
  auto invoke = [&hook](InvocationId id, InvocationId parent) {
    TraceEvent event;
    event.kind = TraceEvent::Kind::kInvoke;
    event.id = id;
    event.parent = parent;
    event.op = "Transfer";
    event.at = static_cast<Tick>(id * 10);
    hook(event);
  };
  invoke(1, 0);
  invoke(2, 1);
  invoke(3, 2);  // evicts id 1: span 2's parent is now gone

  auto spans = recorder.SpanIndex();
  ASSERT_EQ(spans.size(), 2u);
  const TraceRecorder::Span& two = spans.at(2);
  EXPECT_TRUE(two.orphaned);
  EXPECT_EQ(two.parent, 0u);
  const TraceRecorder::Span& three = spans.at(3);
  EXPECT_FALSE(three.orphaned);
  EXPECT_EQ(three.parent, 2u);
  ASSERT_EQ(two.children.size(), 1u);
  EXPECT_EQ(two.children[0], 3u);
  // True roots are distinguishable from eviction artifacts.
  size_t true_roots = 0;
  size_t orphans = 0;
  for (const auto& [id, span] : spans) {
    if (span.parent == 0) {
      (span.orphaned ? orphans : true_roots)++;
    }
  }
  EXPECT_EQ(true_roots, 0u);
  EXPECT_EQ(orphans, 1u);
}

// The acceptance test for causal spans: in a fully lazy 3-filter read-only
// chain, a Transfer arriving at the source must be causally descended from
// the sink's original demand — parent links hop filter by filter.
TEST(TraceTest, SpanParentsFollowTheDemandChain) {
  Kernel kernel;
  TraceRecorder recorder;
  kernel.set_tracer(recorder.Hook());

  ValueList input;
  for (int i = 0; i < 6; ++i) {
    input.push_back(Value(int64_t{i}));
  }
  PipelineOptions options;
  options.discipline = Discipline::kReadOnly;
  options.work_ahead = 0;  // fully lazy: every Transfer is demand-driven
  PipelineHandle handle = BuildPipeline(kernel, std::move(input), Copies(3), options);
  handle.LabelAll(recorder);
  kernel.RunUntil([&handle] { return handle.done(); });
  ASSERT_EQ(handle.output().size(), 6u);

  auto spans = recorder.SpanIndex();
  ASSERT_EQ(spans.size(), recorder.span_count());

  // Parent/child integrity: every recorded parent link has the matching
  // child entry, and children never predate their parents.
  for (const auto& [id, span] : spans) {
    if (span.parent == 0) {
      continue;
    }
    auto parent = spans.find(span.parent);
    ASSERT_NE(parent, spans.end());
    EXPECT_GE(span.start, parent->second.start);
    const auto& siblings = parent->second.children;
    EXPECT_NE(std::find(siblings.begin(), siblings.end(), id), siblings.end());
  }

  // ejects = [source, F1, F2, F3, sink]. Walk one source-bound Transfer's
  // ancestry: it should climb F1 -> F2 -> F3 and terminate at a root span
  // (the sink's own pump loop).
  const Uid& source = handle.ejects[0];
  bool chained = false;
  for (const auto& [id, span] : spans) {
    if (span.to != source || span.op != std::string(kOpTransfer)) {
      continue;
    }
    std::vector<Uid> ancestors;
    InvocationId at = span.parent;
    while (at != 0 && spans.count(at) > 0) {
      ancestors.push_back(spans.at(at).to);
      at = spans.at(at).parent;
    }
    if (ancestors.size() == 3 && ancestors[0] == handle.ejects[1] &&
        ancestors[1] == handle.ejects[2] && ancestors[2] == handle.ejects[3]) {
      chained = true;
      break;
    }
  }
  EXPECT_TRUE(chained);
}

}  // namespace
}  // namespace eden
