// Trace facility tests: event capture, filtering, rendering.
#include <gtest/gtest.h>

#include "src/core/endpoints.h"
#include "src/eden/kernel.h"
#include "src/eden/trace.h"

namespace eden {
namespace {

TEST(TraceTest, CapturesInvocationAndReplyPairs) {
  Kernel kernel;
  TraceRecorder recorder;
  kernel.set_tracer(recorder.Hook());
  VectorSource& source = kernel.CreateLocal<VectorSource>(
      ValueList{Value("a"), Value("b")});
  PullSink& sink = kernel.CreateLocal<PullSink>(source.uid(),
                                                Value(std::string(kChanOut)));
  kernel.RunUntil([&] { return sink.done(); });

  size_t invokes = 0;
  size_t replies = 0;
  for (const TraceEvent& event : recorder.events()) {
    if (event.kind == TraceEvent::Kind::kInvoke) {
      invokes++;
      EXPECT_EQ(event.op, "Transfer");
      EXPECT_EQ(event.from, sink.uid());
      EXPECT_EQ(event.to, source.uid());
    } else {
      replies++;
      EXPECT_TRUE(event.ok);
    }
  }
  EXPECT_EQ(invokes, replies);
  EXPECT_GE(invokes, 2u);
  // Timestamps are monotone.
  for (size_t i = 1; i < recorder.events().size(); ++i) {
    EXPECT_GE(recorder.events()[i].at, recorder.events()[i - 1].at);
  }
}

TEST(TraceTest, FilterOpsKeepsMatchingPairs) {
  Kernel kernel;
  TraceRecorder recorder;
  kernel.set_tracer(recorder.Hook());
  VectorSource& source = kernel.CreateLocal<VectorSource>(ValueList{Value("x")});
  (void)kernel.InvokeAndRun(source.uid(), std::string(kOpOpenChannel),
                            Value().Set(std::string(kFieldName),
                                        Value(std::string(kChanOut))));
  PullSink& sink = kernel.CreateLocal<PullSink>(source.uid(),
                                                Value(std::string(kChanOut)));
  kernel.RunUntil([&] { return sink.done(); });

  recorder.FilterOps({"OpenChannel"});
  ASSERT_EQ(recorder.size(), 2u);  // the OpenChannel and its reply
  EXPECT_EQ(recorder.events()[0].op, "OpenChannel");
  EXPECT_EQ(recorder.events()[1].kind, TraceEvent::Kind::kReply);
}

TEST(TraceTest, RenderShowsLabelsAndArrows) {
  Kernel kernel;
  TraceRecorder recorder;
  kernel.set_tracer(recorder.Hook());
  VectorSource& source = kernel.CreateLocal<VectorSource>(ValueList{Value("x")});
  PullSink& sink = kernel.CreateLocal<PullSink>(source.uid(),
                                                Value(std::string(kChanOut)));
  kernel.RunUntil([&] { return sink.done(); });
  recorder.Label(source.uid(), "source");
  recorder.Label(sink.uid(), "sink");

  std::string chart = recorder.Render();
  EXPECT_NE(chart.find("source"), std::string::npos);
  EXPECT_NE(chart.find("sink"), std::string::npos);
  EXPECT_NE(chart.find("Transfer"), std::string::npos);
  EXPECT_NE(chart.find('>'), std::string::npos);
  EXPECT_NE(chart.find("t="), std::string::npos);
}

TEST(TraceTest, RenderTruncatesLongTraces) {
  Kernel kernel;
  TraceRecorder recorder;
  kernel.set_tracer(recorder.Hook());
  ValueList many;
  for (int i = 0; i < 50; ++i) {
    many.push_back(Value(int64_t{i}));
  }
  VectorSource& source = kernel.CreateLocal<VectorSource>(std::move(many));
  PullSink& sink = kernel.CreateLocal<PullSink>(source.uid(),
                                                Value(std::string(kChanOut)));
  kernel.RunUntil([&] { return sink.done(); });
  std::string chart = recorder.Render(/*max_rows=*/5);
  EXPECT_NE(chart.find("more events"), std::string::npos);
}

TEST(TraceTest, EmptyTraceRenders) {
  TraceRecorder recorder;
  EXPECT_EQ(recorder.Render(), "(no events)\n");
}

}  // namespace
}  // namespace eden
