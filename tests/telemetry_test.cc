// TelemetrySampler, SpaceSavingSketch, SloEngine, DiagnoseTelemetry and the
// Perfetto counter tracks.
//
// The telemetry layer's contract (telemetry.h): fixed-cadence virtual-time
// windows closed purely from observation timestamps; bounded per-series rings
// that count what they evict; a Space-Saving sketch whose reported count
// overestimates the truth by at most its per-entry error; and — because the
// sampler is fed from the kernel's merged observation stream — a JSON export
// that is byte-identical at any shard count.
#include <gtest/gtest.h>

#include <optional>
#include <string>
#include <vector>

#include "src/core/pipeline.h"
#include "src/eden/analysis.h"
#include "src/eden/json.h"
#include "src/eden/monitor.h"
#include "src/eden/random.h"
#include "src/eden/slo.h"
#include "src/eden/telemetry.h"
#include "src/eden/trace.h"
#include "src/eden/trace_export.h"
#include "src/filters/transforms.h"

namespace eden {
namespace {

ValueList MakeLines(int n, uint64_t seed = 83) {
  Rng rng(seed);
  ValueList items;
  items.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    std::string line = rng.Chance(0.25) ? "C " : "      ";
    line += rng.Word(3, 10) + " = " + rng.Word(1, 6);
    items.push_back(Value(std::move(line)));
  }
  return items;
}

std::vector<TransformFactory> CopyChain(size_t n) {
  std::vector<TransformFactory> chain;
  for (size_t i = 0; i < n; ++i) {
    chain.push_back([] {
      return std::make_unique<LambdaTransform>(
          "copy",
          [](const Value& v, const Transform::EmitFn& emit) { emit(kChanOut, v); });
    });
  }
  return chain;
}

// The sharded_test workload: a read-only chain with every Eject on its own
// node, so shard counts > 1 really split the topology.
ValueList RunFig2(int shards, TelemetrySampler* telemetry) {
  KernelOptions kernel_options;
  kernel_options.shards = shards;
  Kernel kernel(kernel_options);
  if (telemetry != nullptr) {
    kernel.set_telemetry(telemetry);
  }
  PipelineOptions options;
  options.discipline = Discipline::kReadOnly;
  options.distinct_nodes = true;
  PipelineHandle handle =
      BuildPipeline(kernel, MakeLines(80), CopyChain(4), options);
  if (telemetry != nullptr) {
    handle.LabelAll(*telemetry);
  }
  kernel.RunUntil([&handle] { return handle.done(); });
  EXPECT_TRUE(kernel.Run());
  return handle.output();
}

// The bench_overload scenario scaled down: a conventional pipeline whose
// consumer is ~10x slower than its producer, with tiny watermarks, so hiwat
// flow events and a long saturated phase are guaranteed.
ValueList RunOverload(int shards, TelemetrySampler* telemetry,
                      InvariantMonitor* monitor = nullptr,
                      TraceRecorder* trace = nullptr) {
  KernelOptions kernel_options;
  kernel_options.shards = shards;
  Kernel kernel(kernel_options);
  if (telemetry != nullptr) {
    kernel.set_telemetry(telemetry);
  }
  if (monitor != nullptr) {
    kernel.set_monitor(monitor);
  }
  if (trace != nullptr) {
    kernel.set_tracer(trace->Hook());
  }
  PipelineOptions options;
  options.discipline = Discipline::kConventional;
  options.distinct_nodes = true;
  options.processing_cost = 2500;
  options.pipe_capacity = 4;
  options.acceptor_capacity = 4;
  options.work_ahead = 4;
  PipelineHandle handle =
      BuildPipeline(kernel, MakeLines(48), CopyChain(1), options);
  if (telemetry != nullptr) {
    handle.LabelAll(*telemetry);
  }
  if (trace != nullptr) {
    handle.LabelAll(*trace);
  }
  kernel.RunUntil([&handle] { return handle.done(); });
  EXPECT_TRUE(kernel.Run());
  return handle.output();
}

TraceEvent Invoke(Tick at, Uid to, InvocationId id) {
  TraceEvent e;
  e.kind = TraceEvent::Kind::kInvoke;
  e.at = at;
  e.to = to;
  e.op = "Transfer";
  e.id = id;
  return e;
}

// ---------------------------------------------------------------- the sketch

TEST(SpaceSavingSketchTest, GuaranteesHeavyHittersWithinErrorBound) {
  // 60 hits on "hot" drowned in 40 singleton keys, capacity 4: the true
  // heavy hitter (count > total/4) must survive, and its reported count may
  // overestimate the truth by at most its per-entry error.
  SpaceSavingSketch<std::string> sketch(4);
  for (int i = 0; i < 100; ++i) {
    if (i % 5 != 0) {
      sketch.Hit("hot");
    } else {
      sketch.Hit("cold" + std::to_string(i));
    }
  }
  EXPECT_EQ(sketch.total(), 100u);
  std::vector<SpaceSavingSketch<std::string>::Entry> top = sketch.TopK();
  ASSERT_FALSE(top.empty());
  EXPECT_EQ(top.front().key, "hot");
  const uint64_t kTrueHot = 80;
  EXPECT_GE(top.front().count, kTrueHot);  // never undercounts
  EXPECT_LE(top.front().count - top.front().error, kTrueHot);
  EXPECT_LE(top.front().error, sketch.total() / sketch.capacity());
  EXPECT_LE(top.size(), 4u);
}

TEST(SpaceSavingSketchTest, EvictsSmallestKeyAmongTiedMinima) {
  SpaceSavingSketch<std::string> sketch(2);
  sketch.Hit("a");
  sketch.Hit("b");  // both count 1; table full
  sketch.Hit("c");  // evicts "a" (smallest key among the tie), inherits 1
  std::vector<SpaceSavingSketch<std::string>::Entry> top = sketch.TopK();
  ASSERT_EQ(top.size(), 2u);
  // Ties sort ascending by key: "b" (1, exact) then "c" (2 = floor+1, err 1).
  EXPECT_EQ(top.front().key, "c");
  EXPECT_EQ(top.front().count, 2u);
  EXPECT_EQ(top.front().error, 1u);
  EXPECT_EQ(top.back().key, "b");
  EXPECT_EQ(top.back().error, 0u);
}

// ------------------------------------------------------------ window closing

TEST(TelemetrySamplerTest, ClosesWindowsFromObservationTimestamps) {
  TelemetrySampler::Options options;
  options.cadence = 100;
  TelemetrySampler sampler(options);
  Uid stage(7, 1);
  sampler.Label(stage, "filter1");

  sampler.OnTraceEvent(Invoke(10, stage, 1));
  sampler.OnTraceEvent(Invoke(50, stage, 2));
  EXPECT_EQ(sampler.windows_closed(), 0);  // window 0 still open

  // An observation at t=250 closes windows 0 and 1; window 2 is open.
  sampler.OnTraceEvent(Invoke(250, stage, 3));
  EXPECT_EQ(sampler.windows_closed(), 2);
  EXPECT_EQ(sampler.open_window(), 2);

  std::vector<TelemetrySampler::CounterView> counters = sampler.CounterSeries();
  const TelemetrySampler::CounterView& inv = counters[TelemetrySampler::kInvoke];
  EXPECT_EQ(inv.name, "invoke");
  EXPECT_EQ(inv.total, 3u);
  ASSERT_EQ(inv.windows.size(), 2u);
  EXPECT_EQ(inv.windows[0], 2u);  // the two invokes before t=100
  EXPECT_EQ(inv.windows[1], 0u);  // the quiet gap window
  EXPECT_EQ(inv.open, 1u);        // the t=250 invoke, not yet closed

  // The sketch saw every hit regardless of windowing.
  std::vector<TelemetrySampler::TopEntry> top = sampler.TopInvocations();
  ASSERT_EQ(top.size(), 1u);
  EXPECT_EQ(top.front().name, "filter1");
  EXPECT_EQ(top.front().count, 3u);
}

TEST(TelemetrySamplerTest, RingWrapCountsEvictions) {
  TelemetrySampler::Options options;
  options.cadence = 100;
  options.ring_capacity = 4;
  TelemetrySampler sampler(options);
  Uid stage(7, 1);

  // One invoke in each of windows 0..9, then one at t=1000 to close window 9.
  for (Tick w = 0; w < 10; ++w) {
    sampler.OnTraceEvent(Invoke(w * 100 + 5, stage, static_cast<InvocationId>(w + 1)));
  }
  sampler.OnTraceEvent(Invoke(1000, stage, 11));
  EXPECT_EQ(sampler.windows_closed(), 10);

  std::vector<TelemetrySampler::CounterView> counters = sampler.CounterSeries();
  const TelemetrySampler::CounterView& inv = counters[TelemetrySampler::kInvoke];
  // The ring holds the most recent 4 closed windows; the 6 evicted ones are
  // counted and the cumulative total never stopped.
  ASSERT_EQ(inv.windows.size(), 4u);
  EXPECT_EQ(inv.evicted, 6u);
  EXPECT_EQ(inv.first_window, 6);
  EXPECT_EQ(inv.total, 11u);
  for (uint64_t delta : inv.windows) {
    EXPECT_EQ(delta, 1u);
  }
}

TEST(TelemetrySamplerTest, QueueSeriesCarriesDepthForwardThroughQuietWindows) {
  TelemetrySampler::Options options;
  options.cadence = 100;
  TelemetrySampler sampler(options);
  Uid owner(9, 2);
  sampler.Label(owner, "pipe0");

  sampler.OnQueueDepth("pipe", owner, 10, 3);
  sampler.OnQueueDepth("pipe", owner, 20, 5);
  sampler.OnFlowEvent("pipe", owner, 25, FlowEvent::kHiwatHit);
  // Nothing happens in windows 1 and 2; t=350 closes 0..2.
  sampler.OnQueueDepth("pipe", owner, 350, 0);

  std::vector<TelemetrySampler::QueueView> queues = sampler.QueueSeries();
  ASSERT_EQ(queues.size(), 1u);
  const TelemetrySampler::QueueView& q = queues[0];
  EXPECT_EQ(q.component, "pipe");
  EXPECT_EQ(q.name, "pipe0");
  ASSERT_EQ(q.windows.size(), 3u);
  EXPECT_EQ(q.windows[0].max, 5u);
  EXPECT_EQ(q.windows[0].last, 5u);
  EXPECT_EQ(q.windows[0].hiwat, 1u);
  // Quiet windows carry the last depth forward with no new extremes.
  EXPECT_EQ(q.windows[1].last, 5u);
  EXPECT_EQ(q.windows[1].max, 5u);
  EXPECT_EQ(q.windows[1].hiwat, 0u);
  EXPECT_EQ(q.hiwat_total, 1u);
  EXPECT_EQ(q.first_hiwat_at, 25);
  EXPECT_EQ(q.first_hiwat_window, 0);
  EXPECT_EQ(q.last_zero_at, 350);
  EXPECT_EQ(q.last_depth, 0u);
}

TEST(TelemetrySamplerTest, WindowValueGrammar) {
  TelemetrySampler::Options options;
  options.cadence = 100;
  TelemetrySampler sampler(options);
  Uid stage(7, 1);
  Uid owner(9, 2);
  sampler.Label(owner, "pipe0");

  sampler.OnTraceEvent(Invoke(10, stage, 1));
  sampler.OnTraceEvent(Invoke(20, stage, 2));
  sampler.OnQueueDepth("pipe", owner, 30, 6);
  sampler.OnQueueDepth("pipe", owner, 40, 2);
  sampler.OnQueueDepth("pipe", owner, 150, 1);  // closes window 0

  EXPECT_EQ(sampler.WindowValue("count:invoke"), std::optional<double>(2.0));
  // rate = delta * 1e6 / cadence = 2 * 1e6 / 100.
  EXPECT_EQ(sampler.WindowValue("rate:invoke"), std::optional<double>(20000.0));
  EXPECT_EQ(sampler.WindowValue("queue:pipe/pipe0"), std::optional<double>(2.0));
  EXPECT_EQ(sampler.WindowValue("queue_max:pipe/pipe0"),
            std::optional<double>(6.0));
  EXPECT_EQ(sampler.WindowValue("count:nonsense"), std::nullopt);
  EXPECT_EQ(sampler.WindowValue("queue:pipe/unknown"), std::nullopt);
  EXPECT_EQ(sampler.WindowValue("bogus:invoke"), std::nullopt);
}

// ------------------------------------------------------------------ the SLO

TEST(SloEngineTest, ParsesSpecsAndRejectsMalformedOnes) {
  SloEngine slo;
  ASSERT_TRUE(slo.Add("overload rate:invoke > 5000 for 3").ok());
  ASSERT_TRUE(slo.Add("backlog queue:server/filter1 >= 8").ok());
  ASSERT_EQ(slo.rules().size(), 2u);
  EXPECT_EQ(slo.rules()[0].name, "overload");
  EXPECT_EQ(slo.rules()[0].sustain, 3);
  EXPECT_EQ(slo.rules()[1].sustain, 1);
  EXPECT_EQ(slo.rules()[1].cmp, SloEngine::Cmp::kGe);

  EXPECT_FALSE(slo.Add("").ok());
  EXPECT_FALSE(slo.Add("name only").ok());
  EXPECT_FALSE(slo.Add("r count:drop !! 3").ok());       // bad comparator
  EXPECT_FALSE(slo.Add("r count:drop > notanum").ok());  // bad threshold
  EXPECT_FALSE(slo.Add("r count:drop > 3 for 0").ok());  // sustain < 1
  EXPECT_FALSE(slo.Add("r count:drop > 3 four 2").ok()); // not "for"
  EXPECT_EQ(slo.rules().size(), 2u);
}

TEST(SloEngineTest, SustainedBreachFiresOnceAndRearmsAfterCleanWindow) {
  TelemetrySampler::Options options;
  options.cadence = 100;
  TelemetrySampler sampler(options);
  SloEngine slo;
  ASSERT_TRUE(slo.Add("busy count:invoke >= 2 for 2").ok());
  sampler.set_slo(&slo);
  Uid stage(7, 1);

  InvocationId id = 1;
  auto window_with = [&](Tick start, int invokes) {
    for (int i = 0; i < invokes; ++i) {
      sampler.OnTraceEvent(Invoke(start + i, stage, id++));
    }
  };
  window_with(0, 2);    // breach, streak 1
  window_with(100, 3);  // breach, streak 2 -> fires when window 1 closes
  window_with(200, 4);  // still breaching: edge-triggered, no second firing
  window_with(300, 0);  // clean: re-arms
  window_with(400, 2);  // breach, streak 1
  window_with(500, 2);  // breach, streak 2 -> second firing
  sampler.OnTraceEvent(Invoke(600, stage, id++));  // closes window 5

  ASSERT_EQ(slo.firings().size(), 2u);
  const SloEngine::Firing& first = slo.firings()[0];
  EXPECT_EQ(first.rule, "busy");
  EXPECT_EQ(first.series, "count:invoke");
  EXPECT_EQ(first.window, 1);
  EXPECT_EQ(first.at, 200);
  EXPECT_EQ(first.value, 3.0);
  EXPECT_EQ(slo.firings()[1].window, 5);
  EXPECT_NE(slo.ToString().find("(fired 2x)"), std::string::npos);

  std::string error;
  EXPECT_TRUE(JsonValidate(ValueToJson(slo.ToValue()), &error)) << error;
}

TEST(SloEngineTest, FiringsReachTraceSinkAndMonitor) {
  TelemetrySampler::Options options;
  options.cadence = 100;
  TelemetrySampler sampler(options);
  TraceRecorder trace;
  InvariantMonitor monitor;
  SloEngine slo;
  ASSERT_TRUE(slo.Add("any count:invoke >= 1").ok());
  slo.set_trace_sink(trace.Hook());
  slo.set_monitor(&monitor);
  sampler.set_slo(&slo);

  Uid stage(7, 1);
  sampler.OnTraceEvent(Invoke(10, stage, 1));
  sampler.OnTraceEvent(Invoke(150, stage, 2));  // closes window 0 -> firing

  ASSERT_EQ(slo.firings().size(), 1u);
  bool saw_violation_event = false;
  for (const TraceEvent& event : trace.events()) {
    if (event.kind == TraceEvent::Kind::kViolation) {
      saw_violation_event = true;
      EXPECT_NE(event.op.find("any"), std::string::npos);
    }
  }
  EXPECT_TRUE(saw_violation_event);
  ASSERT_EQ(monitor.violations().size(), 1u);
  EXPECT_NE(monitor.violations()[0].detail.find("any"), std::string::npos);
}

// ------------------------------------------------------- kernel integration

TEST(TelemetryDeterminismTest, Fig2JsonByteIdenticalAcrossShardCounts) {
  std::string json_by_shards[2];
  int shard_counts[2] = {1, 4};
  for (int i = 0; i < 2; ++i) {
    TelemetrySampler telemetry;
    ValueList output = RunFig2(shard_counts[i], &telemetry);
    ASSERT_EQ(output.size(), 80u);
    json_by_shards[i] = telemetry.ToJson();
    std::string error;
    ASSERT_TRUE(JsonValidate(json_by_shards[i], &error)) << error;
  }
  EXPECT_EQ(json_by_shards[0], json_by_shards[1]);
}

TEST(TelemetryDeterminismTest, OverloadSeriesByteIdenticalAtEveryShardCount) {
  // The acceptance scenario: a sustained rate mismatch, observed at shards
  // {1, 2, 4, 8}. The windowed series must show the hiwat crossing, the
  // sketch must name a stage, and every byte must match the 1-shard run.
  std::string baseline;
  for (int shards : {1, 2, 4, 8}) {
    TelemetrySampler telemetry;
    ValueList output = RunOverload(shards, &telemetry);
    ASSERT_EQ(output.size(), 48u) << shards << " shards";

    std::vector<TelemetrySampler::CounterView> counters =
        telemetry.CounterSeries();
    EXPECT_GT(counters[TelemetrySampler::kHiwat].total, 0u);
    std::vector<TelemetrySampler::QueueView> queues = telemetry.QueueSeries();
    bool crossed = false;
    for (const TelemetrySampler::QueueView& q : queues) {
      crossed = crossed || q.first_hiwat_at >= 0;
    }
    EXPECT_TRUE(crossed);
    EXPECT_FALSE(telemetry.TopInvocations().empty());

    std::string json = telemetry.ToJson();
    if (shards == 1) {
      baseline = json;
      std::string error;
      ASSERT_TRUE(JsonValidate(json, &error)) << error;
    } else {
      EXPECT_EQ(json, baseline) << "telemetry diverged at " << shards
                                << " shards";
    }
  }
}

TEST(TelemetryDeterminismTest, SamplingPreservesSimulationOutput) {
  TelemetrySampler telemetry;
  ValueList sampled = RunOverload(4, &telemetry);
  ValueList plain = RunOverload(4, nullptr);
  EXPECT_EQ(sampled, plain);
}

// ------------------------------------------------------------- the verdict

TEST(DiagnoseTelemetryTest, FindsPeakWindowHotStageAndRamp) {
  TelemetrySampler telemetry;
  RunOverload(1, &telemetry);

  TelemetryVerdict verdict = DiagnoseTelemetry(telemetry);
  ASSERT_TRUE(verdict.valid);
  EXPECT_GT(verdict.windows, 0);
  EXPECT_GT(verdict.invocations, 0u);
  EXPECT_GE(verdict.peak_window, 0);
  EXPECT_GT(verdict.peak_rate, 0.0);
  EXPECT_FALSE(verdict.hot_stage.empty());
  // The overload never drains mid-run windows at these watermarks, so the
  // ramp sentence names a queue and dates the crossing.
  EXPECT_NE(verdict.ramp.find("crossed hiwat at t="), std::string::npos);
  EXPECT_NE(verdict.ToLine().find("telemetry: peak"), std::string::npos);

  std::string error;
  EXPECT_TRUE(JsonValidate(ValueToJson(verdict.ToValue()), &error)) << error;
}

TEST(DiagnoseTelemetryTest, DoctorAppendsTimeAxisAndSloFirings) {
  // Coarse cadence: the whole run fits in the time axis' last-16-row table,
  // so the peak marker is guaranteed to be on a printed row.
  TelemetrySampler::Options coarse;
  coarse.cadence = 20'000;
  TelemetrySampler telemetry(coarse);
  TraceRecorder trace;
  SloEngine slo;
  ASSERT_TRUE(slo.Add("backlog count:hiwat >= 1").ok());
  telemetry.set_slo(&slo);
  slo.set_trace_sink(trace.Hook());
  RunOverload(1, &telemetry, nullptr, &trace);

  ASSERT_FALSE(slo.firings().empty());
  Diagnosis d = PipelineDoctor(trace, nullptr, nullptr, &telemetry).Diagnose();
  ASSERT_TRUE(d.telemetry.valid);
  EXPECT_GT(d.telemetry.slo_fired, 0u);
  EXPECT_NE(d.verdict.find("telemetry: peak"), std::string::npos);
  EXPECT_NE(d.verdict.find("slo:"), std::string::npos);
  std::string report = d.ToString();
  EXPECT_NE(report.find("time axis (cadence"), std::string::npos);
  EXPECT_NE(report.find("<- peak"), std::string::npos);
  EXPECT_NE(report.find("slo fired:"), std::string::npos);

  // Without a sampler the verdict line is unchanged.
  Diagnosis plain = PipelineDoctor(trace).Diagnose();
  EXPECT_FALSE(plain.telemetry.valid);
  EXPECT_EQ(plain.verdict.find("telemetry:"), std::string::npos);
}

// ------------------------------------------------------------ the exporter

TEST(ChromeTraceExporterTest, CounterTracksRideAlongWithSpans) {
  TelemetrySampler telemetry;
  TraceRecorder trace;
  RunOverload(1, &telemetry, nullptr, &trace);

  ChromeTraceExporter exporter(trace);
  exporter.set_telemetry(&telemetry);
  std::string json = exporter.Export();
  std::string error;
  ASSERT_TRUE(JsonValidate(json, &error)) << error;
  EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);
  EXPECT_NE(json.find("telemetry:invoke"), std::string::npos);
  EXPECT_NE(json.find("telemetry:queue "), std::string::npos);

  // Without the sampler attached, no counter events are emitted.
  std::string plain = ChromeTraceExporter(trace).Export();
  EXPECT_EQ(plain.find("\"ph\":\"C\""), std::string::npos);
}

}  // namespace
}  // namespace eden
