// Tests for the §3 CSP rendezvous channel and the §6 Map-protocol file.
#include <gtest/gtest.h>

#include "src/core/endpoints.h"
#include "src/core/rendezvous.h"
#include "src/eden/kernel.h"
#include "src/fs/map_file.h"

namespace eden {
namespace {

// ------------------------------------------------------------- CSP channel

TEST(CspChannelTest, SenderParksUntilReceiver) {
  Kernel kernel;
  CspChannel& channel = kernel.CreateLocal<CspChannel>();
  bool sent = false;
  kernel.ExternalInvoke(channel.uid(), "Send", Value().Set("item", Value(42)),
                        [&](InvokeResult r) {
                          EXPECT_TRUE(r.ok());
                          sent = true;
                        });
  kernel.Run();
  EXPECT_FALSE(sent);  // ! blocks until ? arrives
  EXPECT_EQ(channel.parked_senders(), 1u);

  Value got;
  kernel.ExternalInvoke(channel.uid(), "Receive", Value(), [&](InvokeResult r) {
    ASSERT_TRUE(r.ok());
    got = r.value.Field("item");
  });
  kernel.Run();
  EXPECT_TRUE(sent);  // both completed together
  EXPECT_EQ(got, Value(42));
  EXPECT_EQ(channel.exchanged(), 1u);
}

TEST(CspChannelTest, ReceiverParksUntilSender) {
  Kernel kernel;
  CspChannel& channel = kernel.CreateLocal<CspChannel>();
  bool received = false;
  kernel.ExternalInvoke(channel.uid(), "Receive", Value(), [&](InvokeResult r) {
    EXPECT_TRUE(r.ok());
    EXPECT_EQ(r.value.Field("item"), Value("x"));
    received = true;
  });
  kernel.Run();
  EXPECT_FALSE(received);
  EXPECT_EQ(channel.parked_receivers(), 1u);

  kernel.ExternalInvoke(channel.uid(), "Send", Value().Set("item", Value("x")),
                        [](InvokeResult) {});
  kernel.Run();
  EXPECT_TRUE(received);
}

TEST(CspChannelTest, FifoMatchingIsDeterministic) {
  Kernel kernel;
  CspChannel& channel = kernel.CreateLocal<CspChannel>();
  for (int i = 0; i < 3; ++i) {
    kernel.ExternalInvoke(channel.uid(), "Send",
                          Value().Set("item", Value(int64_t{i})),
                          [](InvokeResult) {});
  }
  std::vector<int64_t> got;
  for (int i = 0; i < 3; ++i) {
    kernel.ExternalInvoke(channel.uid(), "Receive", Value(), [&](InvokeResult r) {
      got.push_back(r.value.Field("item").IntOr(-1));
    });
  }
  kernel.Run();
  EXPECT_EQ(got, (std::vector<int64_t>{0, 1, 2}));
}

TEST(CspChannelTest, CloseReleasesBothSides) {
  Kernel kernel;
  CspChannel& channel = kernel.CreateLocal<CspChannel>();
  Status send_status;
  bool receive_end = false;
  kernel.ExternalInvoke(channel.uid(), "Receive", Value(), [&](InvokeResult r) {
    receive_end = r.value.Field("end").BoolOr(false);
  });
  kernel.Run();
  ASSERT_TRUE(kernel.InvokeAndRun(channel.uid(), "Close").ok());
  EXPECT_TRUE(receive_end);

  kernel.ExternalInvoke(channel.uid(), "Send", Value().Set("item", Value(1)),
                        [&](InvokeResult r) { send_status = r.status; });
  kernel.Run();
  EXPECT_TRUE(send_status.is(StatusCode::kEndOfStream));

  // Receive after close: immediate end.
  bool end2 = false;
  kernel.ExternalInvoke(channel.uid(), "Receive", Value(), [&](InvokeResult r) {
    end2 = r.value.Field("end").BoolOr(false);
  });
  kernel.Run();
  EXPECT_TRUE(end2);
}

TEST(CspChannelTest, ParkedSenderFailsOnClose) {
  Kernel kernel;
  CspChannel& channel = kernel.CreateLocal<CspChannel>();
  Status send_status;
  kernel.ExternalInvoke(channel.uid(), "Send", Value().Set("item", Value(1)),
                        [&](InvokeResult r) { send_status = r.status; });
  kernel.Run();
  ASSERT_TRUE(kernel.InvokeAndRun(channel.uid(), "Close").ok());
  EXPECT_TRUE(send_status.is(StatusCode::kEndOfStream));
}

// A pipeline of Ejects communicating CSP-style: producer ! channel ? filter
// ! channel2 ? consumer. Structural cost: 2 invocations per datum per
// junction — the §3 "both active" interpretation.
class CspCopier : public Eject {
 public:
  CspCopier(Kernel& kernel, Uid in, Uid out)
      : Eject(kernel, "CspCopier"), in_(in), out_(out) {}
  void OnStart() override {
    Spawn(Run());
  }
  Task<void> Run() {
    for (;;) {
      InvokeResult r = co_await Invoke(in_, "Receive", Value());
      if (!r.ok() || r.value.Field("end").BoolOr(false)) {
        break;
      }
      (void)co_await Invoke(out_, "Send",
                            Value().Set("item", r.value.Field("item")));
    }
    (void)co_await Invoke(out_, "Close", Value());
  }

 private:
  Uid in_;
  Uid out_;
};

TEST(CspChannelTest, PipelineOfRendezvousChannels) {
  Kernel kernel;
  CspChannel& a = kernel.CreateLocal<CspChannel>();
  CspChannel& b = kernel.CreateLocal<CspChannel>();
  kernel.CreateLocal<CspCopier>(a.uid(), b.uid());

  Stats before = kernel.stats();
  // Producer pushes 5 items into a, then closes — only after every Send has
  // rendezvoused (Close would otherwise fail still-parked senders).
  int sends_completed = 0;
  for (int i = 0; i < 5; ++i) {
    kernel.ExternalInvoke(a.uid(), "Send", Value().Set("item", Value(int64_t{i})),
                          [&](InvokeResult) {
                            if (++sends_completed == 5) {
                              kernel.ExternalInvoke(a.uid(), "Close", Value(),
                                                    [](InvokeResult) {});
                            }
                          });
  }

  std::vector<int64_t> got;
  bool done = false;
  std::function<void()> pull = [&] {
    kernel.ExternalInvoke(b.uid(), "Receive", Value(), [&](InvokeResult r) {
      if (!r.ok() || r.value.Field("end").BoolOr(false)) {
        done = true;
        return;
      }
      got.push_back(r.value.Field("item").IntOr(-1));
      pull();
    });
  };
  pull();
  kernel.RunUntil([&] { return done; });
  EXPECT_EQ(got, (std::vector<int64_t>{0, 1, 2, 3, 4}));
  // Structural check: per datum, Send+Receive at each of two junctions.
  Stats delta = kernel.stats() - before;
  EXPECT_GE(delta.invocations_sent, 4u * 5u);
}

// ---------------------------------------------------------------- Map file

TEST(MapFileTest, RandomAccessReadWrite) {
  Kernel kernel;
  MapFileEject& file = kernel.CreateLocal<MapFileEject>(
      ValueList{Value("r0"), Value("r1"), Value("r2")});
  InvokeResult read = kernel.InvokeAndRun(file.uid(), "ReadAt",
                                          Value().Set("index", Value(1)));
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read.value.Field("item"), Value("r1"));

  ASSERT_TRUE(kernel
                  .InvokeAndRun(file.uid(), "WriteAt",
                                Value().Set("index", Value(1)).Set("item", Value("R1")))
                  .ok());
  read = kernel.InvokeAndRun(file.uid(), "ReadAt", Value().Set("index", Value(1)));
  EXPECT_EQ(read.value.Field("item"), Value("R1"));
}

TEST(MapFileTest, WriteBeyondEndExtends) {
  Kernel kernel;
  MapFileEject& file = kernel.CreateLocal<MapFileEject>();
  ASSERT_TRUE(kernel
                  .InvokeAndRun(file.uid(), "WriteAt",
                                Value().Set("index", Value(3)).Set("item", Value("x")))
                  .ok());
  InvokeResult length = kernel.InvokeAndRun(file.uid(), "Length");
  EXPECT_EQ(length.value.Field("length"), Value(4));
  InvokeResult hole = kernel.InvokeAndRun(file.uid(), "ReadAt",
                                          Value().Set("index", Value(1)));
  ASSERT_TRUE(hole.ok());
  EXPECT_TRUE(hole.value.Field("item").is_nil());
}

TEST(MapFileTest, OutOfRangeAndBadArgs) {
  Kernel kernel;
  MapFileEject& file = kernel.CreateLocal<MapFileEject>(ValueList{Value(1)});
  EXPECT_TRUE(kernel.InvokeAndRun(file.uid(), "ReadAt", Value().Set("index", Value(5)))
                  .status.is(StatusCode::kNotFound));
  EXPECT_TRUE(kernel.InvokeAndRun(file.uid(), "ReadAt", Value())
                  .status.is(StatusCode::kNotFound));
  EXPECT_TRUE(kernel
                  .InvokeAndRun(file.uid(), "WriteAt",
                                Value().Set("index", Value(-2)).Set("item", Value(0)))
                  .status.is(StatusCode::kInvalidArgument));
  EXPECT_TRUE(kernel.InvokeAndRun(file.uid(), "Truncate", Value())
                  .status.is(StatusCode::kInvalidArgument));
}

TEST(MapFileTest, SupportsBothProtocols) {
  // §6: "it may support both protocols" — stream the same records the Map
  // protocol wrote.
  Kernel kernel;
  MapFileEject& file = kernel.CreateLocal<MapFileEject>();
  for (int64_t i = 0; i < 5; ++i) {
    ASSERT_TRUE(kernel
                    .InvokeAndRun(file.uid(), "WriteAt",
                                  Value()
                                      .Set("index", Value(i))
                                      .Set("item", Value("rec " + std::to_string(i))))
                    .ok());
  }
  PullSink& sink = kernel.CreateLocal<PullSink>(file.uid(),
                                                Value(std::string(kChanOut)));
  kernel.RunUntil([&] { return sink.done(); });
  ASSERT_EQ(sink.items().size(), 5u);
  EXPECT_EQ(sink.items()[2], Value("rec 2"));
}

TEST(MapFileTest, CheckpointAndRecovery) {
  Kernel kernel;
  MapFileEject::RegisterType(kernel);
  MapFileEject& file = kernel.CreateLocal<MapFileEject>(ValueList{Value("a")});
  Uid uid = file.uid();
  (void)kernel.InvokeAndRun(uid, "Checkpoint");
  (void)kernel.InvokeAndRun(uid, "WriteAt",
                            Value().Set("index", Value(0)).Set("item", Value("b")));
  kernel.Crash(uid);
  InvokeResult read = kernel.InvokeAndRun(uid, "ReadAt", Value().Set("index", Value(0)));
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read.value.Field("item"), Value("a"));  // uncheckpointed write lost
}

TEST(MapFileTest, TruncateResetsCursorSafely) {
  Kernel kernel;
  MapFileEject& file = kernel.CreateLocal<MapFileEject>(
      ValueList{Value(1), Value(2), Value(3)});
  // Read one item on the shared channel, then truncate below the cursor.
  InvokeResult first = kernel.InvokeAndRun(file.uid(), "Transfer",
                                           MakeTransferArgs(Value(0), 2));
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(kernel.InvokeAndRun(file.uid(), "Truncate",
                                  Value().Set("length", Value(1)))
                  .ok());
  InvokeResult rest = kernel.InvokeAndRun(file.uid(), "Transfer",
                                          MakeTransferArgs(Value(0), 10));
  ASSERT_TRUE(rest.ok());
  EXPECT_TRUE(rest.value.Field(kFieldEnd).BoolOr(false));
}

}  // namespace
}  // namespace eden
