// Channel identifiers & the §5 security / fan-in / fan-out arguments.
#include <gtest/gtest.h>

#include "src/core/channel.h"
#include "src/core/endpoints.h"
#include "src/core/filter_eject.h"
#include "src/core/stream.h"
#include "src/eden/kernel.h"
#include "src/filters/transforms.h"

namespace eden {
namespace {

ValueList MakeInts(int n) {
  ValueList items;
  for (int i = 0; i < n; ++i) {
    items.push_back(Value(int64_t{i}));
  }
  return items;
}

TEST(ChannelTableTest, ResolvesByIndexNameAndCapability) {
  Kernel kernel;
  ChannelTable table;
  ASSERT_TRUE(table.Declare("out"));
  ASSERT_TRUE(table.Declare("report"));
  EXPECT_FALSE(table.Declare("out"));  // duplicate

  EXPECT_EQ(table.Resolve(Value(int64_t{0})), "out");
  EXPECT_EQ(table.Resolve(Value(int64_t{1})), "report");
  EXPECT_EQ(table.Resolve(Value("report")), "report");
  EXPECT_EQ(table.Resolve(Value(int64_t{2})), std::nullopt);
  EXPECT_EQ(table.Resolve(Value(int64_t{-1})), std::nullopt);
  EXPECT_EQ(table.Resolve(Value("bogus")), std::nullopt);
  EXPECT_EQ(table.Resolve(Value()), std::nullopt);

  auto cap = table.MintCapability("report", kernel);
  ASSERT_TRUE(cap.has_value());
  EXPECT_EQ(table.Resolve(Value(*cap)), "report");
  // A random UID is not a capability.
  EXPECT_EQ(table.Resolve(Value(Uid(123, 456))), std::nullopt);
}

TEST(ChannelTableTest, CapabilityOnlyHidesOtherSpellings) {
  Kernel kernel;
  ChannelTable table;
  table.Declare("secret", /*capability_only=*/true);
  EXPECT_EQ(table.Resolve(Value(int64_t{0})), std::nullopt);
  EXPECT_EQ(table.Resolve(Value("secret")), std::nullopt);
  auto cap = table.MintCapability("secret", kernel);
  EXPECT_EQ(table.Resolve(Value(*cap)), "secret");
}

// A multi-channel source: the tee filter splits a stream onto "out" and
// "copy" — the fan-out solution of §5 via channel identifiers.
TEST(ChannelTest, FanOutViaChannelIdentifiers) {
  Kernel kernel;
  VectorSource& source = kernel.CreateLocal<VectorSource>(MakeInts(8));
  ReadOnlyFilter::Options options;
  options.source = source.uid();
  ReadOnlyFilter& tee =
      kernel.CreateLocal<ReadOnlyFilter>(std::make_unique<TeeTransform>(), options);
  PullSink& main_sink = kernel.CreateLocal<PullSink>(tee.uid(),
                                                     Value(std::string(kChanOut)));
  PullSink& copy_sink = kernel.CreateLocal<PullSink>(tee.uid(), Value("copy"));
  kernel.RunUntil([&] { return main_sink.done() && copy_sink.done(); });
  EXPECT_EQ(main_sink.items(), MakeInts(8));
  EXPECT_EQ(copy_sink.items(), MakeInts(8));
}

// Integer channel identifiers, as in the §7 prototype.
TEST(ChannelTest, IntegerChannelIdentifiersWork) {
  Kernel kernel;
  VectorSource& source = kernel.CreateLocal<VectorSource>(MakeInts(4));
  PullSink& sink = kernel.CreateLocal<PullSink>(source.uid(), Value(int64_t{0}));
  kernel.RunUntil([&] { return sink.done(); });
  EXPECT_EQ(sink.items(), MakeInts(4));
}

TEST(ChannelTest, UnknownChannelIsRejected) {
  Kernel kernel;
  VectorSource& source = kernel.CreateLocal<VectorSource>(MakeInts(4));
  InvokeResult r = kernel.InvokeAndRun(source.uid(), "Transfer",
                                       MakeTransferArgs(Value("nope"), 1));
  EXPECT_TRUE(r.status.is(StatusCode::kNoSuchChannel));
}

// §5: "Arranging for two or more Ejects to make Read invocations on F does
// not help: F cannot distinguish this from one Eject making the same total
// number of Read invocations." Two sinks on ONE channel split the stream;
// they do not each get a copy.
TEST(ChannelTest, TwoReadersOnOneChannelSplitTheStream) {
  Kernel kernel;
  VectorSource& source = kernel.CreateLocal<VectorSource>(MakeInts(10));
  PullSink& a = kernel.CreateLocal<PullSink>(source.uid(),
                                             Value(std::string(kChanOut)));
  PullSink& b = kernel.CreateLocal<PullSink>(source.uid(),
                                             Value(std::string(kChanOut)));
  kernel.RunUntil([&] { return a.done() && b.done(); });
  EXPECT_EQ(a.items().size() + b.items().size(), 10u);
  EXPECT_FALSE(a.items().empty());
  EXPECT_FALSE(b.items().empty());
  // Together they hold each item exactly once.
  ValueList merged = a.items();
  merged.insert(merged.end(), b.items().begin(), b.items().end());
  std::sort(merged.begin(), merged.end(), [](const Value& x, const Value& y) {
    return x.IntOr(0) < y.IntOr(0);
  });
  EXPECT_EQ(merged, MakeInts(10));
}

// §5 security: with capability-only channels, a dishonest Eject that was
// given channel "out" cannot also read channel "report".
TEST(ChannelTest, CapabilityChannelsPreventSnooping) {
  Kernel kernel;
  VectorSource::Options options;
  options.report_every = 2;
  options.capability_only_channels = true;
  VectorSource& source = kernel.CreateLocal<VectorSource>(MakeInts(6), options);

  // The honest interconnector asks the source for capabilities (§5: "Whoever
  // sets up a pipeline must ask each filter for the UIDs of its channels").
  InvokeResult out_cap = kernel.InvokeAndRun(
      source.uid(), std::string(kOpOpenChannel),
      Value().Set(std::string(kFieldName), Value(std::string(kChanOut))));
  ASSERT_TRUE(out_cap.ok());
  Value out_channel = out_cap.value.Field(kFieldChannel);

  // A dishonest reader guesses spellings for the report channel: all fail,
  // indistinguishably from the channel not existing.
  for (Value guess : {Value("report"), Value(int64_t{1}), Value(Uid(1, 2))}) {
    InvokeResult r = kernel.InvokeAndRun(source.uid(), "Transfer",
                                         MakeTransferArgs(guess, 1));
    EXPECT_TRUE(r.status.is(StatusCode::kNoSuchChannel)) << guess.ToString();
  }

  // The legitimate capability works.
  PullSink& sink = kernel.CreateLocal<PullSink>(source.uid(), out_channel);
  kernel.RunUntil([&] { return sink.done(); });
  EXPECT_EQ(sink.items().size(), 6u);
}

// After LockChannels, even OpenChannel is refused: the interconnection phase
// is over and the channel set is frozen.
TEST(ChannelTest, LockedChannelsRefuseMinting) {
  Kernel kernel;
  VectorSource& source = kernel.CreateLocal<VectorSource>(MakeInts(3));
  source.server().LockChannels();
  InvokeResult r = kernel.InvokeAndRun(
      source.uid(), std::string(kOpOpenChannel),
      Value().Set(std::string(kFieldName), Value(std::string(kChanOut))));
  EXPECT_TRUE(r.status.is(StatusCode::kPermissionDenied));
}

TEST(ChannelTest, OpenChannelForUnknownNameFails) {
  Kernel kernel;
  VectorSource& source = kernel.CreateLocal<VectorSource>(MakeInts(3));
  InvokeResult r = kernel.InvokeAndRun(
      source.uid(), std::string(kOpOpenChannel),
      Value().Set(std::string(kFieldName), Value("no-such")));
  EXPECT_TRUE(r.status.is(StatusCode::kNoSuchChannel));
}

// Each minted capability is distinct, and all address the same channel.
TEST(ChannelTest, MultipleCapabilitiesForOneChannel) {
  Kernel kernel;
  ChannelTable table;
  table.Declare("out");
  auto cap1 = table.MintCapability("out", kernel);
  auto cap2 = table.MintCapability("out", kernel);
  ASSERT_TRUE(cap1 && cap2);
  EXPECT_NE(*cap1, *cap2);
  EXPECT_EQ(table.Resolve(Value(*cap1)), "out");
  EXPECT_EQ(table.Resolve(Value(*cap2)), "out");
  EXPECT_EQ(table.minted_count(), 2u);
}

}  // namespace
}  // namespace eden
