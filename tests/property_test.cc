// Property-based tests (parameterized sweeps) over the transput system.
//
//  P1  Output equivalence: any filter chain produces identical output under
//      all three disciplines, for any batch/lookahead/work-ahead setting.
//  P2  Invocation counts match the §4 closed forms for every pipeline
//      length (batch 1) and scale with 1/batch otherwise.
//  P3  Buffer bounds: no passive buffer or work-ahead buffer ever exceeds
//      its declared capacity.
//  P4  Determinism: identical configurations yield identical virtual time,
//      event counts and message counts.
#include <gtest/gtest.h>

#include <tuple>

#include "src/core/pipeline.h"
#include "src/eden/random.h"
#include "src/filters/registry.h"

namespace eden {
namespace {

ValueList RandomLines(uint64_t seed, int n) {
  Rng rng(seed);
  ValueList items;
  for (int i = 0; i < n; ++i) {
    std::string line = rng.Word(0, 12);
    if (rng.Chance(0.2)) {
      line = "C " + line;  // some comment lines for strip
    }
    if (rng.Chance(0.3)) {
      line += " marker";
    }
    items.push_back(Value(std::move(line)));
  }
  return items;
}

// A fixed menu of filter chains exercising stateless, stateful, expanding,
// contracting and end-buffered transforms.
std::vector<std::vector<TransformFactory>> ChainMenu() {
  auto make = [](const std::string& name,
                 std::vector<std::string> args) -> TransformFactory {
    auto factory = MakeTransformByName(name, args);
    EXPECT_TRUE(factory.has_value()) << name;
    return *factory;
  };
  return {
      {},
      {make("copy", {})},
      {make("strip", {"C"}), make("nl", {})},
      {make("grep", {"marker"}), make("upper", {}), make("head", {"7"})},
      {make("sort", {}), make("uniq", {}), make("tail", {"5"})},
      {make("paginate", {"4"}), make("expand", {}), make("wc", {})},
      {make("rot13", {}), make("rot13", {}), make("reverse", {}),
       make("reverse", {})},
  };
}

using EquivParam = std::tuple<int /*chain*/, int /*batch*/, int /*buffering*/>;

class EquivalenceTest : public ::testing::TestWithParam<EquivParam> {};

TEST_P(EquivalenceTest, AllDisciplinesProduceIdenticalOutput) {
  auto [chain_index, batch, buffering] = GetParam();
  std::vector<TransformFactory> chain = ChainMenu()[chain_index];
  ValueList input = RandomLines(1000 + chain_index, 40);

  ValueList reference;
  bool first = true;
  for (Discipline discipline :
       {Discipline::kReadOnly, Discipline::kWriteOnly, Discipline::kConventional}) {
    Kernel kernel;
    PipelineOptions options;
    options.discipline = discipline;
    options.batch = batch;
    options.work_ahead = static_cast<size_t>(buffering);
    options.lookahead = buffering > 1 ? 2 : 0;
    options.pipe_capacity = static_cast<size_t>(buffering) + 1;
    options.acceptor_capacity = static_cast<size_t>(buffering) + 1;
    ValueList output = RunPipeline(kernel, input, chain, options);
    if (first) {
      reference = output;
      first = false;
    } else {
      EXPECT_EQ(output, reference) << DisciplineName(discipline);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, EquivalenceTest,
    ::testing::Combine(::testing::Range(0, 7), ::testing::Values(1, 3),
                       ::testing::Values(1, 4)),
    [](const ::testing::TestParamInfo<EquivParam>& info) {
      return "chain" + std::to_string(std::get<0>(info.param)) + "_batch" +
             std::to_string(std::get<1>(info.param)) + "_buf" +
             std::to_string(std::get<2>(info.param));
    });

// ---------------------------------------------------------------------- P2

class InvocationFormulaTest : public ::testing::TestWithParam<int> {};

TEST_P(InvocationFormulaTest, CountsFollowClosedForm) {
  size_t stages = static_cast<size_t>(GetParam());
  auto chain = [stages]() {
    std::vector<TransformFactory> factories;
    for (size_t i = 0; i < stages; ++i) {
      factories.push_back(*MakeTransformByName("copy", {}));
    }
    return factories;
  }();

  auto measure = [&](Discipline discipline, int items) {
    Kernel kernel;
    PipelineOptions options;
    options.discipline = discipline;
    ValueList input;
    for (int i = 0; i < items; ++i) {
      input.push_back(Value(int64_t{i}));
    }
    ValueList output = RunPipeline(kernel, input, chain, options);
    EXPECT_EQ(output.size(), static_cast<size_t>(items));
    return kernel.stats().invocations_sent.load();
  };

  for (Discipline discipline :
       {Discipline::kReadOnly, Discipline::kWriteOnly, Discipline::kConventional}) {
    uint64_t at_small = measure(discipline, 50);
    uint64_t at_large = measure(discipline, 150);
    double per_datum = static_cast<double>(at_large - at_small) / 100.0;
    EXPECT_NEAR(per_datum,
                static_cast<double>(PredictedInvocationsPerDatum(discipline, stages)),
                0.3)
        << DisciplineName(discipline) << " n=" << stages;
  }
}

INSTANTIATE_TEST_SUITE_P(Lengths, InvocationFormulaTest,
                         ::testing::Values(0, 1, 2, 4, 8, 12));

// ---------------------------------------------------------------------- P3

TEST(BufferBoundTest, WorkAheadNeverExceedsCapacity) {
  for (size_t capacity : {0u, 1u, 3u, 8u}) {
    Kernel kernel;
    VectorSource::Options options;
    options.work_ahead = capacity;
    ValueList input;
    for (int i = 0; i < 30; ++i) {
      input.push_back(Value(int64_t{i}));
    }
    VectorSource& source = kernel.CreateLocal<VectorSource>(input, options);
    // With no consumer the producer must stall at exactly `capacity`.
    kernel.Run();
    EXPECT_LE(source.server().buffered(kChanOut), capacity) << capacity;
    EXPECT_EQ(source.produced_count(), capacity) << capacity;
  }
}

// ---------------------------------------------------------------------- P4

TEST(DeterminismTest, PipelinesAreBitForBitReproducible) {
  auto run = [](Discipline discipline) {
    Kernel kernel;
    PipelineOptions options;
    options.discipline = discipline;
    options.batch = 2;
    options.lookahead = 2;
    std::vector<TransformFactory> chain = {*MakeTransformByName("nl", {}),
                                           *MakeTransformByName("grep", {"1"})};
    ValueList output = RunPipeline(kernel, RandomLines(7, 60), chain, options);
    return std::tuple<size_t, Tick, uint64_t, uint64_t>(
        output.size(), kernel.now(), kernel.stats().events_processed,
        kernel.stats().total_messages());
  };
  for (Discipline discipline :
       {Discipline::kReadOnly, Discipline::kWriteOnly, Discipline::kConventional}) {
    EXPECT_EQ(run(discipline), run(discipline)) << DisciplineName(discipline);
  }
}

// Distinct-node placement changes time (latency) but not results or counts.
TEST(DeterminismTest, NodePlacementAffectsTimeNotSemantics) {
  auto run = [](bool distinct_nodes) {
    Kernel kernel;
    PipelineOptions options;
    options.distinct_nodes = distinct_nodes;
    std::vector<TransformFactory> chain = {*MakeTransformByName("upper", {})};
    ValueList output = RunPipeline(kernel, RandomLines(9, 30), chain, options);
    return std::pair<ValueList, Tick>(output, kernel.now());
  };
  auto local = run(false);
  auto distributed = run(true);
  EXPECT_EQ(local.first, distributed.first);
  EXPECT_GT(distributed.second, local.second);  // network hops cost time
}

}  // namespace
}  // namespace eden
