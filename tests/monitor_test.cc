// InvariantMonitor tests: conservation on clean runs in all three
// disciplines, the (n+1)(m+1) invocation identity, detection of seeded
// message loss, span-tree and sequence-counter checks, and violation events
// flowing into a trace recorder.
#include <gtest/gtest.h>

#include "src/core/endpoints.h"
#include "src/core/pipeline.h"
#include "src/eden/fault.h"
#include "src/eden/json.h"
#include "src/eden/kernel.h"
#include "src/eden/monitor.h"
#include "src/eden/trace.h"

namespace eden {
namespace {

std::vector<TransformFactory> Copies(size_t n) {
  std::vector<TransformFactory> chain;
  for (size_t i = 0; i < n; ++i) {
    chain.push_back([] {
      return std::make_unique<LambdaTransform>(
          "copy", [](const Value& v, const Transform::EmitFn& emit) {
            emit(kChanOut, v);
          });
    });
  }
  return chain;
}

ValueList Items(size_t n) {
  ValueList input;
  for (size_t i = 0; i < n; ++i) {
    input.push_back(Value(static_cast<int64_t>(i)));
  }
  return input;
}

// Runs one clean pipeline under the monitor; returns the handle's output
// size so callers can sanity-check the run itself.
size_t RunMonitored(Discipline discipline, InvariantMonitor& monitor,
                    size_t filters, size_t items, int work_ahead = 0) {
  Kernel kernel;
  kernel.set_monitor(&monitor);
  PipelineOptions options;
  options.discipline = discipline;
  options.work_ahead = work_ahead;
  PipelineHandle handle =
      BuildPipeline(kernel, Items(items), Copies(filters), options);
  handle.LabelAll(monitor);
  kernel.RunUntil([&handle] { return handle.done(); });
  return handle.output().size();
}

TEST(MonitorTest, CleanReadOnlyRunSatisfiesAllInvariants) {
  InvariantMonitor monitor;
  monitor.ExpectReadOnlyPipeline(3, 5);  // the §4 identity: (3+1)(5+1) = 24
  ASSERT_EQ(RunMonitored(Discipline::kReadOnly, monitor, 3, 5), 5u);
  std::vector<InvariantMonitor::Violation> violations = monitor.Check();
  EXPECT_TRUE(violations.empty()) << monitor.ToString();
  EXPECT_TRUE(monitor.ok());
  EXPECT_EQ(monitor.invocations_of("Transfer"), 24u);
  EXPECT_TRUE(JsonValidate(ValueToJson(monitor.ToValue())));
  EXPECT_NE(monitor.ToString().find("all invariants hold"), std::string::npos);
}

TEST(MonitorTest, CleanWriteOnlyRunBalances) {
  InvariantMonitor monitor;
  ASSERT_EQ(RunMonitored(Discipline::kWriteOnly, monitor, 3, 5), 5u);
  EXPECT_TRUE(monitor.ok()) << monitor.ToString();
}

TEST(MonitorTest, CleanConventionalRunBalances) {
  InvariantMonitor monitor;
  ASSERT_EQ(RunMonitored(Discipline::kConventional, monitor, 3, 5), 5u);
  EXPECT_TRUE(monitor.ok()) << monitor.ToString();
}

TEST(MonitorTest, WorkAheadRunStillBalances) {
  InvariantMonitor monitor;
  ASSERT_EQ(RunMonitored(Discipline::kReadOnly, monitor, 2, 8,
                         /*work_ahead=*/4),
            8u);
  EXPECT_TRUE(monitor.ok()) << monitor.ToString();
}

// The detection test: with every reply dropped and no retries, the source's
// server serves its first batch but the items never reach the sink's reader
// — flow conservation must flag items lost on the wire.
TEST(MonitorTest, SeededReplyDropBreaksWireConservation) {
  Kernel kernel;
  FaultPlan plan;
  plan.drop_reply = 1.0;
  FaultInjector injector(plan);
  kernel.set_fault_injector(&injector);
  InvariantMonitor monitor;
  kernel.set_monitor(&monitor);

  PipelineOptions options;
  options.discipline = Discipline::kReadOnly;
  PipelineHandle handle = BuildPipeline(kernel, Items(5), Copies(1), options);
  handle.LabelAll(monitor);
  kernel.Run();  // deadlocks quietly: every reply is lost

  EXPECT_LT(handle.output().size(), 5u);
  std::vector<InvariantMonitor::Violation> violations = monitor.Check();
  ASSERT_FALSE(violations.empty());
  bool saw_conservation = false;
  for (const auto& violation : violations) {
    saw_conservation =
        saw_conservation ||
        violation.kind == InvariantMonitor::Violation::Kind::kFlowConservation;
  }
  EXPECT_TRUE(saw_conservation) << monitor.ToString();
  EXPECT_NE(monitor.ToString().find("VIOLATIONS"), std::string::npos);
}

TEST(MonitorTest, WrongInvocationExpectationIsFlagged) {
  InvariantMonitor monitor;
  monitor.ExpectInvocations("Transfer", 999);
  RunMonitored(Discipline::kReadOnly, monitor, 3, 5);
  std::vector<InvariantMonitor::Violation> violations = monitor.Check();
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0].kind,
            InvariantMonitor::Violation::Kind::kInvocationCount);
  EXPECT_NE(violations[0].detail.find("999"), std::string::npos);
}

TEST(MonitorTest, SpanTreeViolationsAreCaughtInline) {
  InvariantMonitor monitor;
  TraceEvent event;
  event.kind = TraceEvent::Kind::kInvoke;
  event.op = "Transfer";
  event.id = 5;
  event.parent = 7;  // a parent from the future: impossible causality
  monitor.OnTraceEvent(event);
  ASSERT_EQ(monitor.violations().size(), 1u);
  EXPECT_EQ(monitor.violations()[0].kind,
            InvariantMonitor::Violation::Kind::kSpanTree);

  event.id = 5;  // replayed id: allocation is strictly monotone
  event.parent = 0;
  monitor.OnTraceEvent(event);
  EXPECT_EQ(monitor.violations().size(), 2u);
}

TEST(MonitorTest, SequenceRegressionIsCaughtInline) {
  InvariantMonitor monitor;
  const Uid stage(4, 4);
  monitor.OnSequence(stage, 10, "server.next", 5);
  monitor.OnSequence(stage, 20, "server.next", 7);
  EXPECT_TRUE(monitor.violations().empty());
  monitor.OnSequence(stage, 30, "server.next", 3);
  ASSERT_EQ(monitor.violations().size(), 1u);
  EXPECT_EQ(monitor.violations()[0].kind,
            InvariantMonitor::Violation::Kind::kSequence);
  EXPECT_EQ(monitor.violations()[0].at, 30);
}

TEST(MonitorTest, ViolationsFlowIntoTheTraceAsEvents) {
  TraceRecorder recorder;
  InvariantMonitor monitor;
  monitor.set_trace_sink(recorder.Hook());
  const Uid stage(4, 4);
  monitor.OnSequence(stage, 10, "acceptor.next", 5);
  monitor.OnSequence(stage, 20, "acceptor.next", 2);

  ASSERT_EQ(recorder.size(), 1u);
  const TraceEvent& event = recorder.events().front();
  EXPECT_EQ(event.kind, TraceEvent::Kind::kViolation);
  EXPECT_EQ(event.at, 20);
  EXPECT_EQ(event.from, stage);
  EXPECT_NE(event.op.find("sequence"), std::string::npos);
  // And the renderer knows how to print it.
  EXPECT_NE(recorder.Render().find("INVARIANT"), std::string::npos);
}

TEST(MonitorTest, ClearResetsEverything) {
  InvariantMonitor monitor;
  monitor.ExpectInvocations("Transfer", 999);
  RunMonitored(Discipline::kReadOnly, monitor, 1, 2);
  EXPECT_FALSE(monitor.ok());
  monitor.Clear();
  EXPECT_TRUE(monitor.ok());
  EXPECT_TRUE(monitor.flows().empty());
  EXPECT_EQ(monitor.invocations_of("Transfer"), 0u);
}

}  // namespace
}  // namespace eden
