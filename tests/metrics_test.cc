// MetricsRegistry, Log2Histogram, JSON emission and the ChromeTraceExporter
// acceptance criteria (Fig. 2 pipeline: valid trace JSON, one span per
// invocation, n+1 spans per datum).
#include <gtest/gtest.h>

#include <cstdio>
#include <memory>

#include "src/core/endpoints.h"
#include "src/core/pipeline.h"
#include "src/eden/fault.h"
#include "src/eden/json.h"
#include "src/eden/kernel.h"
#include "src/eden/metrics.h"
#include "src/eden/trace.h"
#include "src/eden/trace_export.h"

namespace eden {
namespace {

std::vector<TransformFactory> Copies(size_t n) {
  std::vector<TransformFactory> chain;
  for (size_t i = 0; i < n; ++i) {
    chain.push_back([] {
      return std::make_unique<LambdaTransform>(
          "copy", [](const Value& v, const Transform::EmitFn& emit) {
            emit(kChanOut, v);
          });
    });
  }
  return chain;
}

// ---------------------------------------------------------------- histogram

TEST(Log2HistogramTest, BucketGeometry) {
  EXPECT_EQ(Log2Histogram::BucketOf(0), 0u);
  EXPECT_EQ(Log2Histogram::BucketOf(1), 1u);
  EXPECT_EQ(Log2Histogram::BucketOf(2), 2u);
  EXPECT_EQ(Log2Histogram::BucketOf(3), 2u);
  EXPECT_EQ(Log2Histogram::BucketOf(4), 3u);
  EXPECT_EQ(Log2Histogram::BucketOf(7), 3u);
  EXPECT_EQ(Log2Histogram::BucketOf(8), 4u);
  EXPECT_EQ(Log2Histogram::BucketOf(1023), 10u);
  EXPECT_EQ(Log2Histogram::BucketOf(1024), 11u);
  // The last bucket absorbs everything huge.
  EXPECT_EQ(Log2Histogram::BucketOf(UINT64_MAX), Log2Histogram::kBucketCount - 1);

  // Low/high bounds tile the value space: bucket b = [2^(b-1), 2^b - 1].
  EXPECT_EQ(Log2Histogram::BucketLow(0), 0u);
  EXPECT_EQ(Log2Histogram::BucketHigh(0), 0u);
  for (size_t b = 1; b + 1 < Log2Histogram::kBucketCount; ++b) {
    EXPECT_EQ(Log2Histogram::BucketLow(b), uint64_t{1} << (b - 1));
    EXPECT_EQ(Log2Histogram::BucketHigh(b), (uint64_t{1} << b) - 1);
    EXPECT_EQ(Log2Histogram::BucketLow(b + 1), Log2Histogram::BucketHigh(b) + 1);
    EXPECT_EQ(Log2Histogram::BucketOf(Log2Histogram::BucketLow(b)), b);
    EXPECT_EQ(Log2Histogram::BucketOf(Log2Histogram::BucketHigh(b)), b);
  }
}

TEST(Log2HistogramTest, CountsSumMinMaxMean) {
  Log2Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.Percentile(50), 0u);
  h.Record(10);
  h.Record(20);
  h.Record(30);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.sum(), 60u);
  EXPECT_EQ(h.min(), 10u);
  EXPECT_EQ(h.max(), 30u);
  EXPECT_DOUBLE_EQ(h.Mean(), 20.0);
  EXPECT_EQ(h.bucket(Log2Histogram::BucketOf(10)), 1u);
}

TEST(Log2HistogramTest, PercentilesAreClampedToObservedRange) {
  Log2Histogram h;
  for (uint64_t v = 1; v <= 100; ++v) {
    h.Record(v);
  }
  // Estimates interpolate within buckets, so allow bucket-sized slack, but
  // order and clamping must hold exactly.
  EXPECT_GE(h.Percentile(0), h.min());
  EXPECT_LE(h.Percentile(100), h.max());
  EXPECT_EQ(h.Percentile(100), 100u);
  uint64_t p50 = h.Percentile(50);
  uint64_t p90 = h.Percentile(90);
  uint64_t p99 = h.Percentile(99);
  EXPECT_LE(p50, p90);
  EXPECT_LE(p90, p99);
  EXPECT_GE(p50, 32u);  // true p50 = 50, bucket [32,63]
  EXPECT_LE(p50, 63u);
  EXPECT_GE(p90, 64u);  // true p90 = 90, bucket [64,100] after clamp
  EXPECT_LE(p99, 100u);
}

TEST(Log2HistogramTest, SingleValueHistogramIsExact) {
  Log2Histogram h;
  h.Record(42);
  EXPECT_EQ(h.Percentile(0), 42u);
  EXPECT_EQ(h.Percentile(50), 42u);
  EXPECT_EQ(h.Percentile(100), 42u);
}

TEST(Log2HistogramTest, RepeatedValueIsExactAtEveryPercentile) {
  // All samples in one bucket with min == max: no interpolation slack.
  Log2Histogram h;
  for (int i = 0; i < 1000; ++i) {
    h.Record(100);
  }
  EXPECT_EQ(h.Percentile(1), 100u);
  EXPECT_EQ(h.Percentile(50), 100u);
  EXPECT_EQ(h.Percentile(99), 100u);
}

TEST(Log2HistogramTest, SingleBucketInterpolatesWithinObservedRange) {
  // 40 and 60 share bucket [32, 63], so estimates must stay inside the
  // observed [40, 60], not the bucket bounds.
  Log2Histogram h;
  h.Record(40);
  h.Record(60);
  for (double p : {0.0, 25.0, 50.0, 75.0, 100.0}) {
    EXPECT_GE(h.Percentile(p), 40u) << "p=" << p;
    EXPECT_LE(h.Percentile(p), 60u) << "p=" << p;
  }
  EXPECT_EQ(h.Percentile(100), 60u);
}

TEST(Log2HistogramTest, PercentilesAtBucketBoundaries) {
  // Samples exactly at 2^k - 1 and 2^k fall in adjacent buckets; the
  // percentile walk must respect the split.
  for (size_t k : {3u, 7u, 10u}) {
    uint64_t below = (uint64_t{1} << k) - 1;
    uint64_t at = uint64_t{1} << k;
    ASSERT_NE(Log2Histogram::BucketOf(below), Log2Histogram::BucketOf(at));
    Log2Histogram h;
    h.Record(below);
    h.Record(at);
    EXPECT_EQ(h.Percentile(50), below);
    EXPECT_EQ(h.Percentile(100), at);
    EXPECT_GE(h.Percentile(75), below);
    EXPECT_LE(h.Percentile(75), at);
  }
}

TEST(Log2HistogramTest, MergeAddsBucketwiseAndTracksExtremes) {
  Log2Histogram a;
  a.Record(10);
  a.Record(100);
  Log2Histogram b;
  b.Record(3);
  b.Record(1000);
  a.Merge(b);
  EXPECT_EQ(a.count(), 4u);
  EXPECT_EQ(a.sum(), 1113u);
  EXPECT_EQ(a.min(), 3u);
  EXPECT_EQ(a.max(), 1000u);
  EXPECT_EQ(a.bucket(Log2Histogram::BucketOf(3)), 1u);
  EXPECT_EQ(a.bucket(Log2Histogram::BucketOf(1000)), 1u);

  // Merging an empty histogram is a no-op (min must not collapse to 0).
  Log2Histogram empty;
  a.Merge(empty);
  EXPECT_EQ(a.count(), 4u);
  EXPECT_EQ(a.min(), 3u);

  // Merging INTO an empty histogram adopts the other's extremes.
  Log2Histogram c;
  c.Merge(b);
  EXPECT_EQ(c.count(), 2u);
  EXPECT_EQ(c.min(), 3u);
  EXPECT_EQ(c.max(), 1000u);
}

TEST(Log2HistogramTest, SubtractYieldsWindowDelta) {
  // later = earlier + delta samples, bucket by bucket; counts and sums are
  // exact, min/max are bucket-bound approximations clamped to the later
  // histogram's observed range.
  Log2Histogram earlier;
  earlier.Record(10);
  earlier.Record(20);
  Log2Histogram later = earlier;
  later.Record(100);
  later.Record(200);
  Log2Histogram delta = later.Subtract(earlier);
  EXPECT_EQ(delta.count(), 2u);
  EXPECT_EQ(delta.sum(), 300u);
  EXPECT_EQ(delta.bucket(Log2Histogram::BucketOf(100)), 1u);
  EXPECT_EQ(delta.bucket(Log2Histogram::BucketOf(200)), 1u);
  EXPECT_EQ(delta.bucket(Log2Histogram::BucketOf(10)), 0u);
  // The delta samples {100, 200} live in buckets [64,127] and [128,255]:
  // the approximate min/max are the outermost non-empty delta bucket bounds.
  EXPECT_GE(delta.min(), 64u);
  EXPECT_LE(delta.min(), 100u);
  EXPECT_GE(delta.max(), 200u);
  EXPECT_LE(delta.max(), 255u);

  // Subtracting equal snapshots is the empty histogram.
  Log2Histogram zero = later.Subtract(later);
  EXPECT_EQ(zero.count(), 0u);
  EXPECT_EQ(zero.sum(), 0u);
  EXPECT_EQ(zero.min(), 0u);
  EXPECT_EQ(zero.max(), 0u);
}

TEST(Log2HistogramTest, SubtractClampsToLaterObservedRange) {
  // Boundary: all delta samples share the earlier samples' buckets, so the
  // bucket bounds alone would under/overshoot; the clamp to [min, max] of
  // the later histogram keeps estimates inside observed values.
  Log2Histogram earlier;
  earlier.Record(40);  // bucket [32, 63]
  Log2Histogram later = earlier;
  later.Record(60);  // same bucket
  Log2Histogram delta = later.Subtract(earlier);
  EXPECT_EQ(delta.count(), 1u);
  EXPECT_EQ(delta.sum(), 60u);
  EXPECT_GE(delta.min(), 40u);  // clamped to later.min(), not bucket low 32
  EXPECT_LE(delta.max(), 60u);  // clamped to later.max(), not bucket high 63
  EXPECT_LE(delta.min(), delta.max());
}

// ----------------------------------------------------------------- registry

TEST(MetricsRegistryTest, RecordsAndSnapshots) {
  MetricsRegistry metrics;
  Uid pipe(1, 2);
  metrics.Label(pipe, "pipe0");
  metrics.RecordLatency("Transfer", 120);
  metrics.RecordLatency("Transfer", 240);
  metrics.RecordQueueDepth("pipe", pipe, 3);
  metrics.RecordQueueDepth("pipe", pipe, 7);
  metrics.RecordQueueDepth("pipe", pipe, 2);
  metrics.CountInvocation(pipe);
  metrics.CountInvocation(pipe);

  const Log2Histogram* latency = metrics.LatencyFor("Transfer");
  ASSERT_NE(latency, nullptr);
  EXPECT_EQ(latency->count(), 2u);
  const MetricsRegistry::QueueGauge* gauge = metrics.QueueFor("pipe", pipe);
  ASSERT_NE(gauge, nullptr);
  EXPECT_EQ(gauge->depth, 2u);        // latest
  EXPECT_EQ(gauge->high_water, 7u);   // peak
  EXPECT_EQ(gauge->samples, 3u);
  EXPECT_EQ(metrics.InvocationsTo(pipe), 2u);

  Value snapshot = metrics.Snapshot();
  EXPECT_EQ(snapshot.Field("latency").Field("Transfer").Field("count").IntOr(0), 2);
  EXPECT_EQ(snapshot.Field("queues").Field("pipe/pipe0").Field("high_water").IntOr(0), 7);
  EXPECT_EQ(snapshot.Field("invocations").Field("pipe0").IntOr(0), 2);

  std::string error;
  EXPECT_TRUE(JsonValidate(metrics.ToJson(), &error)) << error;
  EXPECT_NE(metrics.ToString().find("Transfer"), std::string::npos);

  metrics.Clear();
  EXPECT_EQ(metrics.LatencyFor("Transfer"), nullptr);
  EXPECT_EQ(metrics.QueueFor("pipe", pipe), nullptr);
  EXPECT_EQ(metrics.InvocationsTo(pipe), 0u);
}

TEST(JsonTest, ValidatorAcceptsAndRejects) {
  std::string error;
  EXPECT_TRUE(JsonValidate("{}", &error));
  EXPECT_TRUE(JsonValidate("[1, 2.5, -3e4, \"a\\nb\", true, false, null]", &error));
  EXPECT_TRUE(JsonValidate("{\"k\": {\"nested\": [{}]}}", &error));
  EXPECT_FALSE(JsonValidate("", &error));
  EXPECT_FALSE(JsonValidate("{", &error));
  EXPECT_FALSE(JsonValidate("{\"k\": }", &error));
  EXPECT_FALSE(JsonValidate("[1,]", &error));
  EXPECT_FALSE(JsonValidate("{} trailing", &error));
  EXPECT_FALSE(JsonValidate("'single'", &error));
}

// ----------------------------------------------- kernel-integrated metrics

TEST(MetricsKernelTest, LatencyQueuesAndInvocationCountsFromAPipeline) {
  Kernel kernel;
  MetricsRegistry metrics;
  kernel.set_metrics(&metrics);

  ValueList input;
  for (int i = 0; i < 8; ++i) {
    input.push_back(Value(int64_t{i}));
  }
  PipelineOptions options;
  options.discipline = Discipline::kConventional;
  PipelineHandle handle = BuildPipeline(kernel, std::move(input), Copies(1), options);
  handle.LabelAll(metrics);
  kernel.RunUntil([&handle] { return handle.done(); });
  ASSERT_EQ(handle.output().size(), 8u);

  // Every Transfer that completed has a recorded latency.
  const Log2Histogram* transfer = metrics.LatencyFor(std::string(kOpTransfer));
  ASSERT_NE(transfer, nullptr);
  EXPECT_GT(transfer->count(), 0u);
  EXPECT_GT(transfer->Percentile(50), 0u);

  // The pipes sampled their queue depth; invocation counts landed on stages.
  bool saw_pipe_gauge = false;
  for (size_t i = 0; i < handle.ejects.size(); ++i) {
    if (metrics.QueueFor("pipe", handle.ejects[i]) != nullptr) {
      saw_pipe_gauge = true;
    }
  }
  EXPECT_TRUE(saw_pipe_gauge);
  uint64_t invoked = 0;
  for (const Uid& uid : handle.ejects) {
    invoked += metrics.InvocationsTo(uid);
  }
  EXPECT_GT(invoked, 0u);

  std::string error;
  EXPECT_TRUE(JsonValidate(metrics.ToJson(), &error)) << error;
}

TEST(MetricsKernelTest, NoRegistryMeansNoRecording) {
  // Guards the fast path's *semantics* (the perf claim is bench_claim_
  // invocations'): running without a registry must leave a later-installed
  // one untouched.
  Kernel kernel;
  VectorSource& source = kernel.CreateLocal<VectorSource>(ValueList{Value("x")});
  PullSink& sink = kernel.CreateLocal<PullSink>(source.uid(),
                                                Value(std::string(kChanOut)));
  kernel.RunUntil([&] { return sink.done(); });
  MetricsRegistry metrics;
  kernel.set_metrics(&metrics);
  EXPECT_EQ(metrics.LatencyFor(std::string(kOpTransfer)), nullptr);
}

// ------------------------------------------------------------ trace export

// ISSUE acceptance: the Chrome trace of a Fig. 2 read-only run must be valid
// JSON whose per-datum span count matches Stats' invocation count — n+1
// Transfers per datum for n filters (each hop moves m items in m+1
// Transfers, the last carrying the end marker).
TEST(ChromeTraceExportTest, Figure2SpansMatchInvocationCounts) {
  constexpr size_t kFilters = 3;
  constexpr int kItems = 5;

  Kernel kernel;
  TraceRecorder recorder;
  kernel.set_tracer(recorder.Hook());
  Stats before = kernel.stats();

  ValueList input;
  for (int i = 0; i < kItems; ++i) {
    input.push_back(Value(int64_t{i}));
  }
  PipelineOptions options;
  options.discipline = Discipline::kReadOnly;
  options.work_ahead = 0;
  PipelineHandle handle =
      BuildPipeline(kernel, std::move(input), Copies(kFilters), options);
  handle.LabelAll(recorder);
  kernel.RunUntil([&handle] { return handle.done(); });
  ASSERT_EQ(handle.output().size(), static_cast<size_t>(kItems));

  Stats delta = kernel.stats() - before;
  ChromeTraceExporter exporter(recorder);

  // One span per invocation, (n+1) Transfer hops serving (m+1) Transfers each.
  EXPECT_EQ(exporter.span_count(), delta.invocations_sent);
  EXPECT_EQ(delta.invocations_sent,
            (kFilters + 1) * (static_cast<uint64_t>(kItems) + 1));

  std::string json = exporter.Export();
  std::string error;
  ASSERT_TRUE(JsonValidate(json, &error)) << error;

  // Structure: the document is the Chrome trace JSON-object form, spans are
  // complete events, stage labels become thread names.
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"s\""), std::string::npos);  // flow arrows
  EXPECT_NE(json.find("\"ph\":\"f\""), std::string::npos);
  EXPECT_NE(json.find("thread_name"), std::string::npos);
  EXPECT_NE(json.find("filter1"), std::string::npos);
  // Exactly span_count() complete events.
  size_t complete = 0;
  for (size_t at = json.find("\"ph\":\"X\""); at != std::string::npos;
       at = json.find("\"ph\":\"X\"", at + 1)) {
    complete++;
  }
  EXPECT_EQ(complete, exporter.span_count());
}

TEST(ChromeTraceExportTest, FaultEventsBecomeInstants) {
  Kernel kernel;
  FaultPlan plan;
  plan.drop_invocation = 1.0;
  FaultInjector injector(plan);
  kernel.set_fault_injector(&injector);
  TraceRecorder recorder;
  kernel.set_tracer(recorder.Hook());

  VectorSource& source = kernel.CreateLocal<VectorSource>(ValueList{Value("x")});
  PullSink::Options options;
  options.deadline = 500;
  PullSink& sink = kernel.CreateLocal<PullSink>(
      source.uid(), Value(std::string(kChanOut)), options);
  kernel.RunUntil([&] { return sink.done(); });
  kernel.Crash(source.uid());

  std::string json = ChromeTraceExporter(recorder).Export();
  std::string error;
  ASSERT_TRUE(JsonValidate(json, &error)) << error;
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("LOST Transfer"), std::string::npos);
  EXPECT_NE(json.find("deadline"), std::string::npos);
  EXPECT_NE(json.find("CRASH VectorSource"), std::string::npos);
  EXPECT_NE(json.find("\"status\":\"dropped\""), std::string::npos);
}

TEST(ChromeTraceExportTest, WritesFile) {
  TraceRecorder recorder;
  Tracer hook = recorder.Hook();
  TraceEvent event;
  event.kind = TraceEvent::Kind::kInvoke;
  event.id = 1;
  event.op = "Ping";
  hook(event);

  ChromeTraceExporter exporter(recorder);
  std::string path = ::testing::TempDir() + "/eden_trace_test.json";
  ASSERT_TRUE(exporter.WriteFile(path));
  FILE* file = std::fopen(path.c_str(), "rb");
  ASSERT_NE(file, nullptr);
  std::string contents;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), file)) > 0) {
    contents.append(buf, n);
  }
  std::fclose(file);
  std::remove(path.c_str());
  EXPECT_EQ(contents, exporter.Export());
}

// ------------------------------------------------------- shard counters

// The per-shard counters published into the registry after a run are an
// identity, not an estimate: summed over shards they must equal the kernel's
// own event total, and every shard reports the same window count (all shards
// arrive at every window barrier, working or not). Checked at 1 shard (the
// sequential degenerate case) and 4.
TEST(MetricsShardTest, ShardCountersSumToKernelTotals) {
  for (int shards : {1, 4}) {
    KernelOptions kernel_options;
    kernel_options.shards = shards;
    Kernel kernel(kernel_options);
    MetricsRegistry metrics;
    kernel.set_metrics(&metrics);

    ValueList input;
    for (int i = 0; i < 16; ++i) {
      input.push_back(Value(int64_t{i}));
    }
    PipelineOptions options;
    options.discipline = Discipline::kReadOnly;
    options.distinct_nodes = true;
    PipelineHandle handle =
        BuildPipeline(kernel, std::move(input), Copies(3), options);
    kernel.RunUntil([&handle] { return handle.done(); });
    ASSERT_EQ(handle.output().size(), 16u) << "shards=" << shards;

    std::vector<std::pair<int, ShardCounters>> snapshot =
        metrics.ShardSnapshot();
    ASSERT_EQ(snapshot.size(), static_cast<size_t>(shards))
        << "shards=" << shards;
    uint64_t events_total = 0;
    for (const auto& [shard, counters] : snapshot) {
      events_total += counters.events_processed;
      // Window barriers are collective: every shard sees the same count.
      EXPECT_EQ(counters.windows, snapshot.front().second.windows)
          << "shards=" << shards << " shard=" << shard;
    }
    EXPECT_EQ(events_total, kernel.stats().events_processed)
        << "shards=" << shards;
  }
}

}  // namespace
}  // namespace eden