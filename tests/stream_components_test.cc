// Unit tests for the four transput primitives at component level: parked
// request accounting, flow-control windows, abort paths, lookahead
// equivalence, and counter correctness.
#include <gtest/gtest.h>

#include "src/core/endpoints.h"
#include "src/core/passive_buffer.h"
#include "src/core/stream.h"
#include "src/core/stream_acceptor.h"
#include "src/core/stream_reader.h"
#include "src/core/stream_server.h"
#include "src/core/stream_writer.h"
#include "src/eden/kernel.h"

namespace eden {
namespace {

ValueList MakeInts(int n) {
  ValueList items;
  for (int i = 0; i < n; ++i) {
    items.push_back(Value(int64_t{i}));
  }
  return items;
}

// A bare Eject hosting a StreamServer whose production we control by hand.
class ManualSource : public Eject {
 public:
  explicit ManualSource(Kernel& kernel, size_t capacity = 4)
      : Eject(kernel, "ManualSource"), server(*this) {
    StreamServer::ChannelOptions options;
    options.capacity = capacity;
    server.DeclareChannel(std::string(kChanOut), options);
    server.InstallOps();
  }

  void Produce(Value item) {
    Spawn(WriteOne(std::move(item)));
  }
  void CloseOut() { server.Close(std::string(kChanOut)); }
  void Fail(Status status) { server.AbortAll(std::move(status)); }

  StreamServer server;

 private:
  Task<void> WriteOne(Value item) {
    co_await server.Write(kChanOut, std::move(item));
  }
};

TEST(StreamServerTest, ParkedRequestsCountTheVacuum) {
  Kernel kernel;
  ManualSource& source = kernel.CreateLocal<ManualSource>();
  for (int i = 0; i < 4; ++i) {
    kernel.ExternalInvoke(source.uid(), "Transfer",
                          MakeTransferArgs(Value(std::string(kChanOut)), 1),
                          [](InvokeResult) {});
  }
  kernel.Run();
  EXPECT_EQ(source.server.parked_requests(kChanOut), 4u);
  source.Produce(Value(1));
  kernel.Run();
  EXPECT_EQ(source.server.parked_requests(kChanOut), 3u);
  EXPECT_EQ(source.server.items_delivered(), 1u);
}

TEST(StreamServerTest, BatchedTransferTakesUpToMax) {
  Kernel kernel;
  ManualSource& source = kernel.CreateLocal<ManualSource>(8);
  for (int i = 0; i < 5; ++i) {
    source.Produce(Value(int64_t{i}));
  }
  kernel.Run();
  InvokeResult r = kernel.InvokeAndRun(
      source.uid(), "Transfer", MakeTransferArgs(Value(std::string(kChanOut)), 3));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value.Field(kFieldItems).Size(), 3u);
  EXPECT_FALSE(r.value.Field(kFieldEnd).BoolOr(false));
  EXPECT_EQ(source.server.buffered(kChanOut), 2u);
}

TEST(StreamServerTest, EndAccompaniesFinalItems) {
  Kernel kernel;
  ManualSource& source = kernel.CreateLocal<ManualSource>(8);
  source.Produce(Value(1));
  kernel.Run();
  source.CloseOut();
  InvokeResult r = kernel.InvokeAndRun(
      source.uid(), "Transfer", MakeTransferArgs(Value(std::string(kChanOut)), 8));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value.Field(kFieldItems).Size(), 1u);
  EXPECT_TRUE(r.value.Field(kFieldEnd).BoolOr(false));  // no extra round trip
}

TEST(StreamServerTest, TransferAfterEndIsEmptyEnd) {
  Kernel kernel;
  ManualSource& source = kernel.CreateLocal<ManualSource>();
  source.CloseOut();
  for (int i = 0; i < 2; ++i) {
    InvokeResult r = kernel.InvokeAndRun(
        source.uid(), "Transfer", MakeTransferArgs(Value(std::string(kChanOut)), 1));
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.value.Field(kFieldItems).Size(), 0u);
    EXPECT_TRUE(r.value.Field(kFieldEnd).BoolOr(false));
  }
}

TEST(StreamServerTest, WritesAfterCloseAreDropped) {
  Kernel kernel;
  ManualSource& source = kernel.CreateLocal<ManualSource>();
  source.CloseOut();
  source.Produce(Value(1));
  kernel.Run();
  EXPECT_EQ(source.server.buffered(kChanOut), 0u);
}

TEST(StreamServerTest, AbortFailsParkedAndFutureTransfers) {
  Kernel kernel;
  ManualSource& source = kernel.CreateLocal<ManualSource>();
  Status parked_status;
  kernel.ExternalInvoke(source.uid(), "Transfer",
                        MakeTransferArgs(Value(std::string(kChanOut)), 1),
                        [&](InvokeResult r) { parked_status = r.status; });
  kernel.Run();
  source.Fail(Status(StatusCode::kUnavailable, "upstream died"));
  kernel.Run();
  EXPECT_TRUE(parked_status.is(StatusCode::kUnavailable));

  InvokeResult later = kernel.InvokeAndRun(
      source.uid(), "Transfer", MakeTransferArgs(Value(std::string(kChanOut)), 1));
  EXPECT_TRUE(later.status.is(StatusCode::kUnavailable));
}

TEST(StreamServerTest, ZeroCapacityIsPureRendezvous) {
  Kernel kernel;
  ManualSource& source = kernel.CreateLocal<ManualSource>(0);
  source.Produce(Value(42));
  kernel.Run();
  // Producer parked: nothing buffered, nothing produced.
  EXPECT_EQ(source.server.buffered(kChanOut), 0u);

  InvokeResult r = kernel.InvokeAndRun(
      source.uid(), "Transfer", MakeTransferArgs(Value(std::string(kChanOut)), 1));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value.Field(kFieldItems).Size(), 1u);
}

// ------------------------------------------------------------ StreamAcceptor

class ManualSink : public Eject {
 public:
  explicit ManualSink(Kernel& kernel, size_t capacity = 2)
      : Eject(kernel, "ManualSink"), acceptor(*this) {
    StreamAcceptor::ChannelOptions options;
    options.capacity = capacity;
    acceptor.DeclareChannel(std::string(kChanIn), options);
    acceptor.InstallOps();
  }

  // Pops one item synchronously (test helper).
  void PopOne() {
    Spawn(DoPop());
  }
  std::optional<Value> last;

  StreamAcceptor acceptor;

 private:
  Task<void> DoPop() {
    last = co_await acceptor.Next(kChanIn);
  }
};

TEST(StreamAcceptorTest, WithholdsPushRepliesOverCapacity) {
  Kernel kernel;
  ManualSink& sink = kernel.CreateLocal<ManualSink>(2);
  int acknowledged = 0;
  for (int i = 0; i < 5; ++i) {
    kernel.ExternalInvoke(
        sink.uid(), "Push",
        MakePushArgs(Value(std::string(kChanIn)), {Value(int64_t{i})}, false),
        [&](InvokeResult r) {
          EXPECT_TRUE(r.ok());
          acknowledged++;
        });
  }
  kernel.Run();
  EXPECT_LT(acknowledged, 5);  // flow control engaged
  int before = acknowledged;
  // Hysteresis: the withheld replies release only once the queue drains
  // strictly below lowat (capacity/2 = 1 here, i.e. empty).
  for (int i = 0; i < 4; ++i) {
    sink.PopOne();
  }
  kernel.Run();
  EXPECT_EQ(acknowledged, before);  // still at/above lowat
  sink.PopOne();
  kernel.Run();
  EXPECT_GT(acknowledged, before);  // draining released withheld replies
  EXPECT_EQ(acknowledged, 5);
}

TEST(StreamAcceptorTest, EndWakesConsumer) {
  Kernel kernel;
  ManualSink& sink = kernel.CreateLocal<ManualSink>();
  sink.PopOne();
  kernel.Run();
  EXPECT_FALSE(sink.last.has_value());  // still blocked
  kernel.ExternalInvoke(sink.uid(), "Push",
                        MakePushArgs(Value(std::string(kChanIn)), {}, true),
                        [](InvokeResult) {});
  kernel.Run();
  EXPECT_TRUE(sink.acceptor.ended(kChanIn));
}

TEST(StreamAcceptorTest, UnknownChannelRejected) {
  Kernel kernel;
  ManualSink& sink = kernel.CreateLocal<ManualSink>();
  InvokeResult r = kernel.InvokeAndRun(
      sink.uid(), "Push", MakePushArgs(Value("bogus"), {Value(1)}, false));
  EXPECT_TRUE(r.status.is(StatusCode::kNoSuchChannel));
}

// -------------------------------------------------------------- StreamReader

TEST(StreamReaderTest, LookaheadYieldsSameSequenceAsInline) {
  auto run = [](size_t lookahead) {
    Kernel kernel;
    VectorSource& source = kernel.CreateLocal<VectorSource>(MakeInts(25));
    PullSink::Options options;
    options.lookahead = lookahead;
    options.batch = 3;
    PullSink& sink = kernel.CreateLocal<PullSink>(
        source.uid(), Value(std::string(kChanOut)), options);
    kernel.RunUntil([&] { return sink.done(); });
    return sink.items();
  };
  EXPECT_EQ(run(0), run(4));
  EXPECT_EQ(run(0), run(16));
}

TEST(StreamReaderTest, LookaheadSurfacesCrashToo) {
  Kernel kernel;
  VectorSource& source = kernel.CreateLocal<VectorSource>(MakeInts(1000));
  PullSink::Options options;
  options.lookahead = 4;
  PullSink& sink = kernel.CreateLocal<PullSink>(
      source.uid(), Value(std::string(kChanOut)), options);
  kernel.RunUntil([&] { return sink.items().size() >= 5; });
  kernel.Crash(source.uid());
  kernel.RunUntil([&] { return sink.done(); });
  EXPECT_TRUE(sink.done());
  EXPECT_FALSE(sink.stream_status().ok_or_end());
}

// -------------------------------------------------------------- StreamWriter

TEST(StreamWriterTest, BatchesPushes) {
  Kernel kernel;
  ManualSink& sink = kernel.CreateLocal<ManualSink>(100);

  class Producer : public Eject {
   public:
    Producer(Kernel& kernel, Uid sink)
        : Eject(kernel, "Producer"),
          writer(*this, sink, Value(std::string(kChanIn)),
                 StreamWriter::Options{4}) {}
    Task<void> Produce(int n) {
      for (int i = 0; i < n; ++i) {
        co_await writer.Write(Value(int64_t{i}));
      }
      co_await writer.End();
    }
    StreamWriter writer;
  };
  Producer& producer = kernel.CreateLocal<Producer>(sink.uid());
  producer.Spawn(producer.Produce(10));
  kernel.Run();
  // 10 items at batch 4: 2 full pushes + final (2 items + end) = 3 pushes.
  EXPECT_EQ(producer.writer.pushes_sent(), 3u);
  EXPECT_EQ(producer.writer.items_written(), 10u);
  EXPECT_EQ(sink.acceptor.items_received(), 10u);
  EXPECT_EQ(sink.acceptor.buffered(kChanIn), 10u);
  // ended() reports end-AND-drained; drain everything first.
  for (int i = 0; i < 10; ++i) {
    sink.PopOne();
  }
  kernel.Run();
  EXPECT_TRUE(sink.acceptor.ended(kChanIn));
}

TEST(StreamWriterTest, EndIsIdempotentAndWritesAfterEndFail) {
  Kernel kernel;
  ManualSink& sink = kernel.CreateLocal<ManualSink>(100);
  class Producer : public Eject {
   public:
    Producer(Kernel& kernel, Uid sink)
        : Eject(kernel, "Producer"),
          writer(*this, sink, Value(std::string(kChanIn))) {}
    Task<void> Go() {
      co_await writer.End();
      co_await writer.End();  // no second end Push
      Status late = co_await writer.Write(Value(1));
      late_status = late;
    }
    StreamWriter writer;
    Status late_status;
  };
  Producer& producer = kernel.CreateLocal<Producer>(sink.uid());
  producer.Spawn(producer.Go());
  kernel.Run();
  EXPECT_EQ(producer.writer.pushes_sent(), 1u);
  EXPECT_TRUE(producer.late_status.is(StatusCode::kEndOfStream));
}

TEST(StreamWriterTest, SurfacesSinkFailure) {
  Kernel kernel;
  ManualSink& sink = kernel.CreateLocal<ManualSink>(100);
  Uid sink_uid = sink.uid();
  class Producer : public Eject {
   public:
    Producer(Kernel& kernel, Uid sink)
        : Eject(kernel, "Producer"),
          writer(*this, sink, Value(std::string(kChanIn))) {}
    Task<void> Go() {
      first = co_await writer.Write(Value(1));
      second = co_await writer.Write(Value(2));
    }
    StreamWriter writer;
    Status first;
    Status second;
  };
  Producer& producer = kernel.CreateLocal<Producer>(sink_uid);
  kernel.Crash(sink_uid);
  producer.Spawn(producer.Go());
  kernel.Run();
  EXPECT_TRUE(producer.first.is(StatusCode::kNoSuchEject));
  // After a failure the writer refuses further writes with the same status.
  EXPECT_FALSE(producer.second.ok());
}

// ------------------------------------------------------------- PassiveBuffer

TEST(PassiveBufferTest, CountsItemsThrough) {
  Kernel kernel;
  PushSource& source = kernel.CreateLocal<PushSource>(MakeInts(12));
  PassiveBuffer& pipe = kernel.CreateLocal<PassiveBuffer>();
  PullSink& sink = kernel.CreateLocal<PullSink>(pipe.uid(),
                                                Value(std::string(kChanOut)));
  source.BindOutput(pipe.uid(), Value(std::string(kChanIn)));
  kernel.RunUntil([&] { return sink.done(); });
  EXPECT_EQ(pipe.items_through(), 12u);
  EXPECT_EQ(sink.items(), MakeInts(12));
}

TEST(PassiveBufferTest, CapacityOnePipeStillDeliversEverything) {
  Kernel kernel;
  PassiveBuffer::Options options;
  options.capacity = 1;
  PushSource& source = kernel.CreateLocal<PushSource>(MakeInts(20));
  PassiveBuffer& pipe = kernel.CreateLocal<PassiveBuffer>(options);
  PullSink& sink = kernel.CreateLocal<PullSink>(pipe.uid(),
                                                Value(std::string(kChanOut)));
  source.BindOutput(pipe.uid(), Value(std::string(kChanIn)));
  kernel.RunUntil([&] { return sink.done(); });
  EXPECT_EQ(sink.items(), MakeInts(20));
}

}  // namespace
}  // namespace eden
