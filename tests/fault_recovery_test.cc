// Fault-tolerant streams: invocation deadlines, deterministic fault
// injection, sequenced-stream retry/replay/dedup, and crash-and-reactivate
// recovery of mid-pipeline filters in all three transput disciplines.
#include <gtest/gtest.h>

#include <cstdint>
#include <deque>
#include <string>
#include <utility>
#include <vector>

#include "src/core/endpoints.h"
#include "src/core/pipeline.h"
#include "src/core/stream.h"
#include "src/core/stream_acceptor.h"
#include "src/core/stream_reader.h"
#include "src/core/stream_server.h"
#include "src/eden/fault.h"
#include "src/eden/kernel.h"

namespace eden {
namespace {

ValueList MakeInts(int n) {
  ValueList items;
  for (int i = 0; i < n; ++i) {
    items.push_back(Value(int64_t{i}));
  }
  return items;
}

// ---------------------------------------------------------------- deadlines

// Parks every "Op" reply forever: the callee that never answers.
class SilentEject : public Eject {
 public:
  explicit SilentEject(Kernel& kernel) : Eject(kernel, "Silent") {
    Register("Op", [this](InvocationContext ctx) {
      parked_.push_back(ctx.TakeReply());
    });
  }

 private:
  std::deque<ReplyHandle> parked_;
};

// Answers "Op" after `delay` ticks — possibly after the caller's deadline.
class SlowEject : public Eject {
 public:
  SlowEject(Kernel& kernel, Tick delay) : Eject(kernel, "Slow"), delay_(delay) {
    Register("Op", [this](InvocationContext ctx) {
      Spawn(ReplyLate(ctx.TakeReply()));
    });
  }

 private:
  Task<void> ReplyLate(ReplyHandle reply) {
    co_await Sleep(delay_);
    reply.Reply(Value(int64_t{42}));
  }

  Tick delay_;
};

class DeadlineCaller : public Eject {
 public:
  DeadlineCaller(Kernel& kernel, Uid target, Tick deadline)
      : Eject(kernel, "Caller"), target_(target), deadline_(deadline) {}

  void OnStart() override { Spawn(Go()); }

  bool done = false;
  Status status;

 private:
  Task<void> Go() {
    InvokeResult r = co_await Invoke(target_, "Op", Value(), deadline_);
    status = std::move(r.status);
    done = true;
  }

  Uid target_;
  Tick deadline_;
};

TEST(DeadlineTest, FiresWhenTargetNeverReplies) {
  Kernel kernel;
  SilentEject& silent = kernel.CreateLocal<SilentEject>();
  DeadlineCaller& caller =
      kernel.CreateLocal<DeadlineCaller>(silent.uid(), Tick{500});
  kernel.Run();
  ASSERT_TRUE(caller.done);
  EXPECT_TRUE(caller.status.is(StatusCode::kDeadlineExceeded));
  EXPECT_EQ(kernel.stats().timeouts, 1u);
}

TEST(DeadlineTest, ZeroDeadlineWaitsForever) {
  Kernel kernel;
  SlowEject& slow = kernel.CreateLocal<SlowEject>(Tick{5'000});
  DeadlineCaller& caller = kernel.CreateLocal<DeadlineCaller>(slow.uid(), Tick{0});
  kernel.Run();
  ASSERT_TRUE(caller.done);
  EXPECT_TRUE(caller.status.ok());
  EXPECT_EQ(kernel.stats().timeouts, 0u);
}

// The race from the issue: the deadline fires first, the genuine reply
// arrives later. The caller must see exactly one resumption (the deadline)
// and the late reply must be swallowed by the pending-table erase.
TEST(DeadlineTest, LateReplyAfterDeadlineIsDropped) {
  Kernel kernel;
  SlowEject& slow = kernel.CreateLocal<SlowEject>(Tick{2'000});
  DeadlineCaller& caller = kernel.CreateLocal<DeadlineCaller>(slow.uid(), Tick{300});
  kernel.Run();  // runs past the late reply at ~2000 ticks
  ASSERT_TRUE(caller.done);
  EXPECT_TRUE(caller.status.is(StatusCode::kDeadlineExceeded));
  EXPECT_EQ(kernel.stats().timeouts, 1u);
  // The late reply found no pending entry: it must not have been delivered.
  EXPECT_TRUE(kernel.quiescent());
}

TEST(DeadlineTest, ReplyBeforeDeadlineCancelsIt) {
  Kernel kernel;
  SlowEject& slow = kernel.CreateLocal<SlowEject>(Tick{200});
  DeadlineCaller& caller =
      kernel.CreateLocal<DeadlineCaller>(slow.uid(), Tick{50'000});
  kernel.Run();
  ASSERT_TRUE(caller.done);
  EXPECT_TRUE(caller.status.ok());
  EXPECT_EQ(kernel.stats().timeouts, 0u);
}

// ----------------------------------------------------------- fault injector

TEST(FaultInjectorTest, SameSeedSamePlanIsByteIdentical) {
  auto run = [](uint64_t seed) {
    Kernel kernel;
    FaultPlan plan;
    plan.seed = seed;
    plan.drop_invocation = 0.05;
    plan.drop_reply = 0.05;
    plan.jitter = 30;
    FaultInjector injector(plan);
    kernel.set_fault_injector(&injector);
    PipelineOptions options;
    options.discipline = Discipline::kReadOnly;
    options.recovery.enabled = true;
    ValueList output = RunPipeline(kernel, MakeInts(30),
                                   {MakeTransformFactory<LambdaTransform>(
                                       "copy",
                                       [](const Value& v, const Transform::EmitFn& emit) {
                                         emit(kChanOut, v);
                                       })},
                                   options);
    return std::make_pair(kernel.stats().ToString(), output);
  };
  auto [stats_a, out_a] = run(7);
  auto [stats_b, out_b] = run(7);
  auto [stats_c, out_c] = run(8);
  EXPECT_EQ(stats_a, stats_b);
  EXPECT_EQ(out_a, out_b);
  EXPECT_EQ(out_a, out_c);  // different faults, same recovered output
  EXPECT_NE(stats_a, stats_c);  // but a genuinely different fault pattern
}

TEST(FaultInjectorTest, DropsAreCountedAndTraced) {
  Kernel kernel;
  FaultPlan plan;
  plan.drop_invocation = 0.5;
  FaultInjector injector(plan);
  kernel.set_fault_injector(&injector);
  size_t drop_events = 0;
  kernel.set_tracer([&drop_events](const TraceEvent& event) {
    if (event.kind == TraceEvent::Kind::kDrop) {
      drop_events++;
    }
  });
  SlowEject& slow = kernel.CreateLocal<SlowEject>(Tick{10});
  for (int i = 0; i < 40; ++i) {
    kernel.CreateLocal<DeadlineCaller>(slow.uid(), Tick{1'000});
  }
  kernel.Run();
  EXPECT_GT(injector.invocations_dropped(), 0u);
  EXPECT_EQ(kernel.stats().messages_dropped, injector.invocations_dropped());
  EXPECT_EQ(drop_events, injector.invocations_dropped());
  EXPECT_EQ(kernel.stats().timeouts, injector.invocations_dropped());
}

// ------------------------------------------------- recovery: lost messages

// A stateful transform: proves transform state rides the checkpoint.
class RunningSum : public Transform {
 public:
  void OnItem(const Value& item, const EmitFn& emit) override {
    sum_ += item.IntOr(0);
    emit(kChanOut, Value(sum_));
  }
  Value SaveState() const override {
    Value state;
    state.Set("sum", Value(sum_));
    return state;
  }
  void RestoreState(const Value& state) override {
    sum_ = state.Field("sum").IntOr(0);
  }
  std::string name() const override { return "running-sum"; }

 private:
  int64_t sum_ = 0;
};

std::vector<TransformFactory> SumThenCopy() {
  return {MakeTransformFactory<RunningSum>(),
          MakeTransformFactory<LambdaTransform>(
              "copy", [](const Value& v, const Transform::EmitFn& emit) {
                emit(kChanOut, v);
              })};
}

PipelineOptions RecoveryOptions(Discipline discipline) {
  PipelineOptions options;
  options.discipline = discipline;
  options.processing_cost = 20;
  options.recovery.enabled = true;
  options.recovery.checkpoint_every = 8;
  return options;
}

class FaultRecoveryTest : public ::testing::TestWithParam<Discipline> {};

TEST_P(FaultRecoveryTest, LostMessagesDoNotChangeOutput) {
  const Discipline discipline = GetParam();
  ValueList clean;
  {
    Kernel kernel;
    clean = RunPipeline(kernel, MakeInts(40), SumThenCopy(),
                        RecoveryOptions(discipline));
    // Fault-free recovery runs must not exercise any fault machinery.
    EXPECT_EQ(kernel.stats().timeouts, 0u);
    EXPECT_EQ(kernel.stats().retries, 0u);
    EXPECT_EQ(kernel.stats().messages_dropped, 0u);
    EXPECT_EQ(kernel.stats().redeliveries_dropped, 0u);
    EXPECT_EQ(kernel.stats().recoveries, 0u);
  }
  Kernel kernel;
  FaultPlan plan;
  plan.drop_invocation = 0.02;
  plan.drop_reply = 0.02;
  FaultInjector injector(plan);
  kernel.set_fault_injector(&injector);
  ValueList faulty = RunPipeline(kernel, MakeInts(40), SumThenCopy(),
                                 RecoveryOptions(discipline));
  EXPECT_EQ(faulty, clean) << DisciplineName(discipline);
  EXPECT_GT(kernel.stats().messages_dropped, 0u);
  EXPECT_GT(kernel.stats().retries, 0u);
}

// ------------------------------------------------- recovery: filter crashes

TEST_P(FaultRecoveryTest, CrashedFilterReactivatesFromCheckpoint) {
  const Discipline discipline = GetParam();
  ValueList clean;
  {
    Kernel kernel;
    clean = RunPipeline(kernel, MakeInts(60), SumThenCopy(),
                        RecoveryOptions(discipline));
  }
  Kernel kernel;
  FaultInjector injector;
  kernel.set_fault_injector(&injector);
  PipelineHandle handle = BuildPipeline(kernel, MakeInts(60), SumThenCopy(),
                                        RecoveryOptions(discipline));
  // ejects[] is source..sink; the stateful RunningSum filter sits at [1]
  // (conventional interposes a pipe first, putting it at [2]).
  Uid victim = discipline == Discipline::kConventional ? handle.ejects[2]
                                                       : handle.ejects[1];
  injector.ScheduleCrash(kernel, Tick{12'000}, victim);
  ASSERT_TRUE(kernel.RunUntil([&handle] { return handle.done(); }));
  EXPECT_EQ(handle.output(), clean) << DisciplineName(discipline);
  EXPECT_EQ(kernel.stats().crashes, 1u);
  EXPECT_GE(kernel.stats().activations, 1u);
}

TEST_P(FaultRecoveryTest, CrashPlusMessageLossStillConverges) {
  const Discipline discipline = GetParam();
  ValueList clean;
  {
    Kernel kernel;
    clean = RunPipeline(kernel, MakeInts(60), SumThenCopy(),
                        RecoveryOptions(discipline));
  }
  Kernel kernel;
  FaultPlan plan;
  plan.drop_invocation = 0.01;
  plan.drop_reply = 0.01;
  FaultInjector injector(plan);
  kernel.set_fault_injector(&injector);
  PipelineHandle handle = BuildPipeline(kernel, MakeInts(60), SumThenCopy(),
                                        RecoveryOptions(discipline));
  Uid victim = discipline == Discipline::kConventional ? handle.ejects[2]
                                                       : handle.ejects[1];
  injector.ScheduleCrash(kernel, Tick{12'000}, victim);
  ASSERT_TRUE(kernel.RunUntil([&handle] { return handle.done(); }));
  EXPECT_EQ(handle.output(), clean) << DisciplineName(discipline);
  EXPECT_EQ(kernel.stats().crashes, 1u);
}

INSTANTIATE_TEST_SUITE_P(AllDisciplines, FaultRecoveryTest,
                         ::testing::Values(Discipline::kReadOnly,
                                           Discipline::kWriteOnly,
                                           Discipline::kConventional),
                         [](const ::testing::TestParamInfo<Discipline>& info) {
                           switch (info.param) {
                             case Discipline::kReadOnly:
                               return "ReadOnly";
                             case Discipline::kWriteOnly:
                               return "WriteOnly";
                             case Discipline::kConventional:
                               return "Conventional";
                           }
                           return "Unknown";
                         });

// A classic (recovery-disabled) pipeline must never apply the recovery
// deadline knobs. Regression: a hold-back stage parks the downstream
// Transfer for the whole streaming phase; if the disabled-but-populated
// deadline leaked through, the request timed out, the reader re-invoked,
// and the stale parked request silently ate the first item of the end
// burst — one item lost per junction.
TEST(FaultRecoveryTest, DisabledRecoveryNeverTimesOutHoldBackStages) {
  ValueList input = MakeInts(156);
  std::vector<TransformFactory> chain = {
      MakeTransformFactory<LambdaTransform>(
          "hold-all",
          [](const Value&, const Transform::EmitFn&) {},
          [&input](const Transform::EmitFn& emit) {
            for (const Value& v : input) {
              emit(kChanOut, v);
            }
          }),
      MakeTransformFactory<LambdaTransform>(
          "copy", [](const Value& v, const Transform::EmitFn& emit) {
            emit(kChanOut, v);
          })};
  PipelineOptions options;
  options.discipline = Discipline::kConventional;
  // recovery stays disabled; its deadline/retry fields hold defaults that
  // must be inert.
  Kernel kernel;
  ValueList output = RunPipeline(kernel, input, chain, options);
  EXPECT_EQ(output.size(), input.size());
  EXPECT_EQ(kernel.stats().timeouts, 0u);
  EXPECT_EQ(kernel.stats().retries, 0u);
}

// ------------------------------------------------------------- satellites

// Satellite: an acceptor must release withheld Push replies the moment the
// stream ends — the producer is otherwise parked until the acceptor's
// destructor cancels it.
class UndrainedAcceptor : public Eject {
 public:
  explicit UndrainedAcceptor(Kernel& kernel) : Eject(kernel, "Undrained"), acceptor(*this) {
    StreamAcceptor::ChannelOptions options;
    options.capacity = 2;
    acceptor.DeclareChannel(std::string(kChanIn), options);
    acceptor.InstallOps();
  }

  StreamAcceptor acceptor;
};

TEST(StreamAcceptorTest, WithheldRepliesReleaseWhenStreamEnds) {
  Kernel kernel;
  UndrainedAcceptor& target = kernel.CreateLocal<UndrainedAcceptor>();
  Status first_status;
  bool first_replied = false;
  kernel.ExternalInvoke(target.uid(), std::string(kOpPush),
                        MakePushArgs(Value(std::string(kChanIn)), MakeInts(5),
                                     /*end=*/false),
                        [&](InvokeResult r) {
                          first_replied = true;
                          first_status = std::move(r.status);
                        });
  kernel.Run();
  // Buffer (5) is above capacity (2) and nobody drains: reply withheld.
  ASSERT_FALSE(first_replied);
  kernel.ExternalInvoke(target.uid(), std::string(kOpPush),
                        MakePushArgs(Value(std::string(kChanIn)), ValueList(),
                                     /*end=*/true),
                        [](InvokeResult) {});
  kernel.Run();
  ASSERT_TRUE(first_replied);
  EXPECT_TRUE(first_status.ok()) << first_status.ToString();
}

// Satellite: aborted Transfers must not inflate transfers_served.
class AbortingSource : public Eject {
 public:
  explicit AbortingSource(Kernel& kernel) : Eject(kernel, "Aborting"), server(*this) {
    server.DeclareChannel(std::string(kChanOut));
    server.InstallOps();
  }

  StreamServer server;
};

TEST(StreamServerTest, AbortedTransfersAreCountedSeparately) {
  Kernel kernel;
  AbortingSource& source = kernel.CreateLocal<AbortingSource>();
  int failed = 0;
  for (int i = 0; i < 3; ++i) {
    kernel.ExternalInvoke(source.uid(), std::string(kOpTransfer),
                          MakeTransferArgs(Value(std::string(kChanOut)), 1),
                          [&failed](InvokeResult r) {
                            if (r.status.is(StatusCode::kUnavailable)) {
                              failed++;
                            }
                          });
  }
  kernel.Run();
  source.server.AbortAll(Status(StatusCode::kUnavailable, "upstream died"));
  kernel.Run();
  EXPECT_EQ(failed, 3);
  EXPECT_EQ(source.server.transfers_aborted(), 3u);
  EXPECT_EQ(source.server.transfers_served(), 0u);
  EXPECT_EQ(source.server.items_delivered(), 0u);
}

// Satellite: the sequenced reader deduplicates a redelivered prefix.
TEST(SequencedStreamTest, RedeliveredItemsAreDroppedOnce) {
  Kernel kernel;
  VectorSource::Options source_options;
  source_options.sequenced = true;
  VectorSource& source =
      kernel.CreateLocal<VectorSource>(MakeInts(6), source_options);
  kernel.Run();
  // First fetch: positions 0..2.
  InvokeResult a = kernel.InvokeAndRun(
      source.uid(), std::string(kOpTransfer),
      MakeTransferArgs(Value(std::string(kChanOut)), 3, /*seq=*/0, /*ack=*/0));
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(a.value.Field(kFieldSeq).IntOr(-1), 0);
  // Re-request position 0: the server replays, flagging the redelivery.
  InvokeResult b = kernel.InvokeAndRun(
      source.uid(), std::string(kOpTransfer),
      MakeTransferArgs(Value(std::string(kChanOut)), 3, /*seq=*/0, /*ack=*/0));
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(b.value.Field(kFieldSeq).IntOr(-1), 0);
  EXPECT_GT(kernel.stats().redeliveries, 0u);
  // Acknowledging position 3 trims the replay window...
  InvokeResult c = kernel.InvokeAndRun(
      source.uid(), std::string(kOpTransfer),
      MakeTransferArgs(Value(std::string(kChanOut)), 3, /*seq=*/3, /*ack=*/3));
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(source.server().acked(kChanOut), 3u);
  // ...after which a request below the window is a hard error.
  InvokeResult d = kernel.InvokeAndRun(
      source.uid(), std::string(kOpTransfer),
      MakeTransferArgs(Value(std::string(kChanOut)), 3, /*seq=*/0, /*ack=*/3));
  EXPECT_TRUE(d.status.is(StatusCode::kInternal));
}

// Satellite: a sequenced acceptor refuses gapped pushes and names the
// position it expects, so the sender can rewind.
TEST(SequencedStreamTest, GappedPushIsRefusedWithResumePosition) {
  Kernel kernel;
  PushSink::Options options;
  options.sequenced = true;
  PushSink& sink = kernel.CreateLocal<PushSink>(options);
  InvokeResult ahead = kernel.InvokeAndRun(
      sink.uid(), std::string(kOpPush),
      MakePushArgs(Value(std::string(kChanIn)), MakeInts(2), false, /*seq=*/5));
  ASSERT_TRUE(ahead.ok());
  EXPECT_EQ(ahead.value.Field(kFieldNext).IntOr(-1), 0);  // nothing ingested
  InvokeResult ok = kernel.InvokeAndRun(
      sink.uid(), std::string(kOpPush),
      MakePushArgs(Value(std::string(kChanIn)), MakeInts(2), false, /*seq=*/0));
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value.Field(kFieldNext).IntOr(-1), 2);
  // A duplicate of position 0..1 plus fresh position 2 ingests only item 2.
  InvokeResult dup = kernel.InvokeAndRun(
      sink.uid(), std::string(kOpPush),
      MakePushArgs(Value(std::string(kChanIn)), MakeInts(3), false, /*seq=*/0));
  ASSERT_TRUE(dup.ok());
  EXPECT_EQ(dup.value.Field(kFieldNext).IntOr(-1), 3);
  EXPECT_EQ(kernel.stats().redeliveries_dropped, 2u);
}

}  // namespace
}  // namespace eden
