// Behavioural-compatibility tests (§2): specifications, subset
// compatibility, and which of this repository's Ejects satisfy which
// abstract machines.
#include <gtest/gtest.h>

#include "src/core/endpoints.h"
#include "src/core/passive_buffer.h"
#include "src/eden/behavior.h"
#include "src/eden/kernel.h"
#include "src/fs/directory.h"
#include "src/fs/file.h"
#include "src/fs/map_file.h"

namespace eden {
namespace {

TEST(SpecificationTest, SubsetAndUnion) {
  Specification small("S", {"A", "B"});
  Specification big("S'", {"A", "B", "C"});
  EXPECT_TRUE(small.SubsetOf(big));   // S ⊆ S': compatible
  EXPECT_FALSE(big.SubsetOf(small));
  EXPECT_TRUE(small.SubsetOf(small));

  Specification merged = small.Union(Specification("T", {"C", "D"}), "U");
  EXPECT_EQ(merged.ops().size(), 4u);
  EXPECT_TRUE(small.SubsetOf(merged));
}

TEST(SpecificationTest, RequireExtends) {
  Specification spec("S", {"A"});
  spec.Require("B").Require("A");  // duplicate is a no-op
  EXPECT_EQ(spec.ops().size(), 2u);
}

TEST(BehaviorTest, SourcesSatisfySourceSpec) {
  Kernel kernel;
  VectorSource& source = kernel.CreateLocal<VectorSource>(ValueList{Value(1)});
  EXPECT_TRUE(Satisfies(source, SourceSpec()));
  EXPECT_FALSE(Satisfies(source, SinkSpec()));
}

TEST(BehaviorTest, PassiveBufferIsBothSourceAndSink) {
  // The pipe supports the whole Sequence machine: passive input AND output.
  Kernel kernel;
  PassiveBuffer& pipe = kernel.CreateLocal<PassiveBuffer>();
  EXPECT_TRUE(Satisfies(pipe, SourceSpec()));
  EXPECT_TRUE(Satisfies(pipe, SinkSpec()));
  EXPECT_TRUE(Satisfies(pipe, SequenceSpec()));
}

TEST(BehaviorTest, SupersetCompatibility) {
  // §2: "it does not matter to E that S' contains other operations in
  // addition" — a full Directory also serves any client that only needs
  // Lookup.
  Kernel kernel;
  DirectoryEject& directory = kernel.CreateLocal<DirectoryEject>();
  EXPECT_TRUE(Satisfies(directory, DirectorySpec()));
  EXPECT_TRUE(Satisfies(directory, LookupSpec()));
}

TEST(BehaviorTest, ConcatenatorIsASatisfactoryDirectoryForLookup) {
  // §2: "From the point of view of an Eject trying to perform a Lookup
  // operation, any Eject which responds in the appropriate way is a
  // satisfactory directory." The concatenator satisfies Lookup (and List)
  // but is NOT a full Directory: it cannot AddEntry.
  Kernel kernel;
  DirectoryConcatenator& concat =
      kernel.CreateLocal<DirectoryConcatenator>(std::vector<Uid>{});
  EXPECT_TRUE(Satisfies(concat, LookupSpec()));
  EXPECT_FALSE(Satisfies(concat, DirectorySpec()));
  std::set<std::string> missing = MissingOps(concat, DirectorySpec());
  EXPECT_EQ(missing, (std::set<std::string>{"AddEntry", "DeleteEntry"}));
}

TEST(BehaviorTest, MapFileSupportsBothProtocols) {
  // §6: "it may support both protocols."
  Kernel kernel;
  MapFileEject& file = kernel.CreateLocal<MapFileEject>();
  EXPECT_TRUE(Satisfies(file, MapSpec()));
  // It streams via Transfer but mints sessions via Open, not OpenChannel —
  // so it satisfies a Transfer-only notion of source, not the full channel
  // machine.
  Specification transfer_only("TransferSource", {"Transfer"});
  EXPECT_TRUE(Satisfies(file, transfer_only));
  EXPECT_FALSE(Satisfies(file, SourceSpec()));
  EXPECT_EQ(MissingOps(file, SourceSpec()),
            (std::set<std::string>{"OpenChannel"}));
}

TEST(BehaviorTest, PlainFileIsATransferSourceToo) {
  // Behavioural equivalence across distinct Eden types (§2: "several
  // distinct Eden types behave in the same way"): FileEject and
  // UnixFileSource both implement the Transfer machine.
  Kernel kernel;
  FileEject& file = kernel.CreateLocal<FileEject>("x\n");
  Specification transfer_only("TransferSource", {"Transfer"});
  EXPECT_TRUE(Satisfies(file, transfer_only));
}

}  // namespace
}  // namespace eden
