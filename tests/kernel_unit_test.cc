// Fine-grained kernel-substrate unit tests: event queue ordering, cost
// model arithmetic, stats diffing, bounded queues, stable store, and the
// Eject lifecycle corners not covered by kernel_test.cc.
#include <gtest/gtest.h>

#include "src/eden/codec.h"
#include "src/eden/cost_model.h"
#include "src/eden/eject.h"
#include "src/eden/event_queue.h"
#include "src/eden/inspect.h"
#include "src/eden/kernel.h"
#include "src/eden/stable_store.h"
#include "src/eden/sync.h"

namespace eden {
namespace {

TEST(EventQueueTest, PopsInTimeThenInsertionOrder) {
  EventQueue queue;
  std::vector<int> order;
  queue.Schedule(10, [&] { order.push_back(1); });
  queue.Schedule(5, [&] { order.push_back(2); });
  queue.Schedule(10, [&] { order.push_back(3); });  // same time as #1: FIFO
  queue.Schedule(1, [&] { order.push_back(4); });
  while (!queue.empty()) {
    auto popped = queue.Pop();
    popped.action();
  }
  EXPECT_EQ(order, (std::vector<int>{4, 2, 1, 3}));
}

// The sharded kernel's determinism rests on this ordering being a pure
// function of (time, origin node, per-origin sequence) — independent of the
// order events were pushed into the queue, which is the one thing that
// differs between a 1-shard and an N-shard run.
TEST(EventQueueTest, TieBreakIsShardStable) {
  std::vector<int> a_order;
  {
    EventQueue queue;  // insertion order: node2 first
    queue.Schedule(EventKey{10, 2, 0}, 2, [&] { a_order.push_back(2); });
    queue.Schedule(EventKey{10, 1, 5}, 1, [&] { a_order.push_back(1); });
    queue.Schedule(EventKey{10, 1, 4}, 1, [&] { a_order.push_back(0); });
    queue.Schedule(EventKey{10, kNoNode, 9}, kNoNode, [&] { a_order.push_back(-1); });
    while (!queue.empty()) queue.Pop().action();
  }
  std::vector<int> b_order;
  {
    EventQueue queue;  // reversed insertion order: same pops regardless
    queue.Schedule(EventKey{10, kNoNode, 9}, kNoNode, [&] { b_order.push_back(-1); });
    queue.Schedule(EventKey{10, 1, 4}, 1, [&] { b_order.push_back(0); });
    queue.Schedule(EventKey{10, 1, 5}, 1, [&] { b_order.push_back(1); });
    queue.Schedule(EventKey{10, 2, 0}, 2, [&] { b_order.push_back(2); });
    while (!queue.empty()) queue.Pop().action();
  }
  // Driver origin (kNoNode) sorts first, then by (origin, seq).
  EXPECT_EQ(a_order, (std::vector<int>{-1, 0, 1, 2}));
  EXPECT_EQ(b_order, a_order);
}

TEST(EventQueueTest, NextTimeTracksEarliest) {
  EventQueue queue;
  queue.Schedule(100, [] {});
  queue.Schedule(7, [] {});
  EXPECT_EQ(queue.next_time(), 7);
  (void)queue.Pop();
  EXPECT_EQ(queue.next_time(), 100);
}

TEST(CostModelTest, MessageCostComponents) {
  CostModel costs;
  costs.invocation_send = 100;
  costs.cross_node_latency = 400;
  costs.per_byte_num = 1;
  costs.per_byte_den = 16;
  // Same node: send + bytes/16.
  EXPECT_EQ(costs.MessageCost(160, 0, 0), 100 + 10);
  // Cross node: plus the hop.
  EXPECT_EQ(costs.MessageCost(160, 0, 1), 100 + 10 + 400);
  // External endpoints (kNoNode) never pay the hop.
  EXPECT_EQ(costs.MessageCost(0, kNoNode, 1), 100);
  EXPECT_EQ(costs.MessageCost(0, 2, kNoNode), 100);
}

TEST(StatsTest, DiffIsComponentwise) {
  Stats a;
  a.invocations_sent = 10;
  a.replies_sent = 9;
  a.context_switches = 100;
  Stats b;
  b.invocations_sent = 4;
  b.replies_sent = 4;
  b.context_switches = 40;
  Stats d = a - b;
  EXPECT_EQ(d.invocations_sent, 6u);
  EXPECT_EQ(d.replies_sent, 5u);
  EXPECT_EQ(d.context_switches, 60u);
  EXPECT_EQ(d.total_messages(), 11u);
}

TEST(StatsTest, ToStringMentionsKeyCounters) {
  Stats stats;
  stats.invocations_sent = 42;
  std::string text = stats.ToString();
  EXPECT_NE(text.find("invocations=42"), std::string::npos);
}

TEST(StableStoreTest, PutGetEraseAndVersions) {
  StableStore store;
  Uid uid(1, 2);
  EXPECT_FALSE(store.Contains(uid));
  store.Put(uid, "T", 0, Bytes{1, 2, 3});
  ASSERT_TRUE(store.Contains(uid));
  EXPECT_EQ(store.Get(uid)->version, 1u);
  EXPECT_EQ(store.total_bytes(), 3u);
  store.Put(uid, "T", 0, Bytes{1, 2, 3, 4, 5});
  EXPECT_EQ(store.Get(uid)->version, 2u);
  EXPECT_EQ(store.total_bytes(), 5u);
  EXPECT_TRUE(store.Erase(uid));
  EXPECT_FALSE(store.Erase(uid));
  EXPECT_EQ(store.total_bytes(), 0u);
}

TEST(StableStoreTest, AllUidsIsSorted) {
  StableStore store;
  store.Put(Uid(2, 0), "T", 0, {});
  store.Put(Uid(1, 0), "T", 0, {});
  store.Put(Uid(3, 0), "T", 0, {});
  std::vector<Uid> uids = store.AllUids();
  ASSERT_EQ(uids.size(), 3u);
  EXPECT_TRUE(uids[0] < uids[1] && uids[1] < uids[2]);
}

// ------------------------------------------------------------ Eject corners

class SelfDeactivator : public Eject {
 public:
  explicit SelfDeactivator(Kernel& kernel) : Eject(kernel, "SelfDeactivator") {
    Register("Vanish", [this](InvocationContext ctx) {
      ctx.Reply();
      RequestDeactivate();  // deferred: safe from inside the handler
    });
  }
};

TEST(EjectTest, SelfDeactivationFromHandlerIsSafe) {
  Kernel kernel;
  SelfDeactivator& eject = kernel.CreateLocal<SelfDeactivator>();
  Uid uid = eject.uid();
  InvokeResult r = kernel.InvokeAndRun(uid, "Vanish");
  EXPECT_TRUE(r.ok());
  kernel.Run();
  EXPECT_FALSE(kernel.IsActive(uid));
}

class IdentityKeeper : public Eject {
 public:
  static constexpr const char* kType = "IdentityKeeper";
  explicit IdentityKeeper(Kernel& kernel) : Eject(kernel, kType) {
    Register("WhoAmI", [this](InvocationContext ctx) {
      ctx.Reply(Value(uid()));
    });
    Register("Checkpoint", [this](InvocationContext ctx) {
      Checkpoint();
      ctx.Reply();
    });
  }
};

TEST(EjectTest, ReactivationPreservesIdentity) {
  // "The reactivated instance IS the old Eject": same UID before and after.
  Kernel kernel;
  kernel.types().Register(IdentityKeeper::kType, [](Kernel& k) {
    return std::make_unique<IdentityKeeper>(k);
  });
  IdentityKeeper& eject = kernel.CreateLocal<IdentityKeeper>();
  Uid uid = eject.uid();
  (void)kernel.InvokeAndRun(uid, "Checkpoint");
  kernel.Crash(uid);
  InvokeResult r = kernel.InvokeAndRun(uid, "WhoAmI");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value.UidOr(Uid()), uid);
}

TEST(EjectTest, OperationsListsRegisteredOps) {
  Kernel kernel;
  IdentityKeeper& eject = kernel.CreateLocal<IdentityKeeper>();
  std::vector<std::string> ops = eject.Operations();
  EXPECT_EQ(ops, (std::vector<std::string>{"Checkpoint", "WhoAmI"}));
  EXPECT_TRUE(eject.Responds("WhoAmI"));
  EXPECT_FALSE(eject.Responds("Nope"));
}

TEST(EjectTest, ActivationChargesVirtualTime) {
  KernelOptions options;
  options.costs.activation = 5000;
  Kernel kernel(options);
  kernel.types().Register(IdentityKeeper::kType, [](Kernel& k) {
    return std::make_unique<IdentityKeeper>(k);
  });
  IdentityKeeper& eject = kernel.CreateLocal<IdentityKeeper>();
  Uid uid = eject.uid();
  (void)kernel.InvokeAndRun(uid, "Checkpoint");
  Tick warm_start = kernel.now();
  (void)kernel.InvokeAndRun(uid, "WhoAmI");
  Tick warm_cost = kernel.now() - warm_start;

  kernel.Crash(uid);
  Tick cold_start = kernel.now();
  (void)kernel.InvokeAndRun(uid, "WhoAmI");
  Tick cold_cost = kernel.now() - cold_start;
  EXPECT_GE(cold_cost, warm_cost + 5000);
}

TEST(EjectTest, TwoKernelsAreIndependent) {
  Kernel a;
  Kernel b;
  // Crash destroys the Eject object, so keep uids, not references.
  Uid in_a = a.CreateLocal<IdentityKeeper>().uid();
  // Same seed: both kernels generate the same first UID...
  IdentityKeeper& in_b = b.CreateLocal<IdentityKeeper>();
  EXPECT_EQ(in_a, in_b.uid());
  // ...but the registries are disjoint state: crash in one, fine in other.
  a.Crash(in_a);
  EXPECT_FALSE(a.IsActive(in_a));
  EXPECT_TRUE(b.IsActive(in_b.uid()));
  // Distinct seeds diverge.
  KernelOptions options;
  options.uid_seed = 999;
  Kernel c(options);
  IdentityKeeper& in_c = c.CreateLocal<IdentityKeeper>();
  EXPECT_NE(in_c.uid(), in_b.uid());
}


TEST(InspectTest, DumpsEjectsStoreAndStats) {
  Kernel kernel;
  kernel.types().Register(IdentityKeeper::kType, [](Kernel& k) {
    return std::make_unique<IdentityKeeper>(k);
  });
  IdentityKeeper& eject = kernel.CreateLocal<IdentityKeeper>();
  (void)kernel.InvokeAndRun(eject.uid(), "Checkpoint");

  std::string ejects = DumpEjects(kernel);
  EXPECT_NE(ejects.find("IdentityKeeper"), std::string::npos);
  EXPECT_NE(ejects.find("WhoAmI"), std::string::npos);
  EXPECT_NE(ejects.find(eject.uid().Short()), std::string::npos);

  std::string store = DumpStore(kernel, kernel.store());
  EXPECT_NE(store.find("IdentityKeeper"), std::string::npos);

  std::string stats = DumpStats(kernel);
  EXPECT_NE(stats.find("invocations="), std::string::npos);
  EXPECT_NE(stats.find("t="), std::string::npos);
}

// -------------------------------------------------------------- BoundedQueue

class QueueHost : public Eject {
 public:
  explicit QueueHost(Kernel& kernel) : Eject(kernel, "QueueHost"), queue(*this, 3) {}
  BoundedQueue<int> queue;
};

TEST(BoundedQueueTest, TryOpsRespectCapacityAndClose) {
  Kernel kernel;
  QueueHost& host = kernel.CreateLocal<QueueHost>();
  EXPECT_TRUE(host.queue.TryPush(1));
  EXPECT_TRUE(host.queue.TryPush(2));
  EXPECT_TRUE(host.queue.TryPush(3));
  EXPECT_FALSE(host.queue.TryPush(4));  // full
  EXPECT_EQ(host.queue.TryPop(), 1);
  EXPECT_TRUE(host.queue.TryPush(4));
  host.queue.Close();
  EXPECT_FALSE(host.queue.TryPush(5));
  EXPECT_EQ(host.queue.TryPop(), 2);  // drain continues after close
  EXPECT_EQ(host.queue.size(), 2u);
}

TEST(BoundedQueueTest, CloseWakesBlockedPopper) {
  class Popper : public Eject {
   public:
    explicit Popper(Kernel& kernel) : Eject(kernel, "Popper"), queue(*this, 2) {}
    void OnStart() override {
      Spawn(Go());
    }
    Task<void> Go() {
      result = co_await queue.Pop();
      finished = true;
    }
    BoundedQueue<int> queue;
    std::optional<int> result = 42;  // sentinel
    bool finished = false;
  };
  Kernel kernel;
  Popper& popper = kernel.CreateLocal<Popper>();
  kernel.Run();
  EXPECT_FALSE(popper.finished);  // blocked on empty queue
  popper.queue.Close();
  kernel.Run();
  EXPECT_TRUE(popper.finished);
  EXPECT_EQ(popper.result, std::nullopt);
}


TEST(KernelRunTest, RunHonorsMaxEvents) {
  Kernel kernel;
  // An endless ping-pong of self-scheduled actions.
  std::function<void()> tick = [&] { kernel.ScheduleAction(10, tick); };
  kernel.ScheduleAction(0, tick);
  EXPECT_FALSE(kernel.Run(/*max_events=*/100));
  EXPECT_FALSE(kernel.quiescent());
}

TEST(KernelRunTest, RunUntilReturnsFalseWhenConditionUnreachable) {
  Kernel kernel;
  EXPECT_FALSE(kernel.RunUntil([] { return false; }, 10));
}

TEST(KernelRunTest, InvokeAndRunTimesOutCleanly) {
  // A handler that parks forever on an Eject nobody ever feeds: the helper
  // returns kTimeout instead of spinning.
  class BlackHole : public Eject {
   public:
    explicit BlackHole(Kernel& kernel) : Eject(kernel, "BlackHole") {
      Register("Swallow", [this](InvocationContext ctx) {
        parked_.push_back(ctx.TakeReply());
      });
    }
    std::vector<ReplyHandle> parked_;
  };
  Kernel kernel;
  BlackHole& hole = kernel.CreateLocal<BlackHole>();
  InvokeResult r = kernel.InvokeAndRun(hole.uid(), "Swallow");
  EXPECT_TRUE(r.status.is(StatusCode::kTimeout));
}

// ------------------------------------------------------------ Value corners

TEST(ValueTest, SetOnNonMapIsIgnoredGracefully) {
  Value v(42);
  v.Set("k", Value(1));  // not a map: no-op by design
  EXPECT_TRUE(v.is_int());
}

TEST(ValueTest, SizeOfScalarsIsZero) {
  EXPECT_EQ(Value(3).Size(), 0u);
  EXPECT_EQ(Value().Size(), 0u);
  EXPECT_EQ(Value("abc").Size(), 3u);
}

// ----------------------------------------------------------- Stats X-macro

// Regression guard for the EDEN_STATS_FIELDS list: every field must survive
// operator- and appear (by label) in both ToString and ToValue. Adding a
// counter to the struct without adding it to the macro is impossible; this
// test makes the reverse drift (a macro entry missing from a dump) fail too.
TEST(StatsTest, EveryFieldDiffsAndIsDumped) {
  Stats a;
  Stats b;
  uint64_t seed = 100;
#define EDEN_STATS_FILL(field, label) \
  a.field = 2 * seed;                 \
  b.field = seed;                     \
  seed += 7;
  EDEN_STATS_FIELDS(EDEN_STATS_FILL)
#undef EDEN_STATS_FILL

  Stats d = a - b;
  std::string text = d.ToString();
  Value map = d.ToValue();
  seed = 100;
#define EDEN_STATS_CHECK(field, label)                                   \
  EXPECT_EQ(d.field, seed) << #field;                                    \
  EXPECT_NE(text.find(std::string(label) + "=" + std::to_string(seed)),  \
            std::string::npos)                                           \
      << label;                                                          \
  EXPECT_EQ(map.Field(label).IntOr(-1), static_cast<int64_t>(seed))      \
      << label;                                                          \
  seed += 7;
  EDEN_STATS_FIELDS(EDEN_STATS_CHECK)
#undef EDEN_STATS_CHECK

  EXPECT_EQ(d.total_messages(), d.invocations_sent + d.replies_sent);
  EXPECT_EQ(map.Field("total_messages").IntOr(-1),
            static_cast<int64_t>(d.total_messages()));
  EXPECT_EQ(map.Field("total_bytes").IntOr(-1),
            static_cast<int64_t>(d.total_bytes()));
}

}  // namespace
}  // namespace eden
