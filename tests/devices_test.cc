// Device Eject tests (§4): terminals pump, printers paginate, report windows
// fan in, null sinks discard, clocks and random sources supply.
#include <gtest/gtest.h>

#include "src/core/endpoints.h"
#include "src/core/stream.h"
#include "src/devices/devices.h"
#include "src/eden/kernel.h"
#include "src/fs/file.h"

namespace eden {
namespace {

ValueList Lines(std::initializer_list<const char*> lines) {
  ValueList items;
  for (const char* line : lines) {
    items.push_back(Value(line));
  }
  return items;
}

TEST(TerminalTest, PumpsSourceOntoScreen) {
  Kernel kernel;
  VectorSource& source = kernel.CreateLocal<VectorSource>(Lines({"a", "b"}));
  TerminalSink& terminal = kernel.CreateLocal<TerminalSink>();
  terminal.Connect(source.uid(), Value(std::string(kChanOut)));
  kernel.RunUntil([&] { return terminal.idle(); });
  EXPECT_EQ(terminal.screen(), (std::vector<std::string>{"a", "b"}));
}

TEST(TerminalTest, ConnectRedirectsDynamically) {
  // §8: "Redirection of input and output can be provided very naturally..."
  Kernel kernel;
  VectorSource::Options slow;
  slow.work_ahead = 1;
  VectorSource& first = kernel.CreateLocal<VectorSource>(
      Lines({"f1", "f2", "f3", "f4", "f5", "f6", "f7", "f8"}), slow);
  VectorSource& second = kernel.CreateLocal<VectorSource>(Lines({"s1", "s2"}));
  TerminalSink& terminal = kernel.CreateLocal<TerminalSink>();

  terminal.Connect(first.uid(), Value(std::string(kChanOut)));
  kernel.RunUntil([&] { return terminal.lines_shown() >= 2; });
  terminal.Connect(second.uid(), Value(std::string(kChanOut)));
  kernel.RunUntil([&] { return terminal.idle(); });

  // The screen holds a prefix of the first stream, then all of the second.
  ASSERT_GE(terminal.screen().size(), 4u);
  EXPECT_EQ(terminal.screen()[0], "f1");
  EXPECT_EQ(terminal.screen().back(), "s2");
  EXPECT_EQ(terminal.screen()[terminal.screen().size() - 2], "s1");
}

TEST(TerminalTest, ScrollbackIsBounded) {
  Kernel kernel;
  ValueList many;
  for (int i = 0; i < 50; ++i) {
    many.push_back(Value("line " + std::to_string(i)));
  }
  TerminalOptions options;
  options.scrollback = 10;
  VectorSource& source = kernel.CreateLocal<VectorSource>(std::move(many));
  TerminalSink& terminal = kernel.CreateLocal<TerminalSink>(options);
  terminal.Connect(source.uid(), Value(std::string(kChanOut)));
  kernel.RunUntil([&] { return terminal.idle(); });
  EXPECT_EQ(terminal.screen().size(), 10u);
  EXPECT_EQ(terminal.screen().back(), "line 49");
  EXPECT_EQ(terminal.lines_shown(), 50u);
}

TEST(TerminalTest, ConnectViaInvocation) {
  Kernel kernel;
  VectorSource& source = kernel.CreateLocal<VectorSource>(Lines({"x"}));
  TerminalSink& terminal = kernel.CreateLocal<TerminalSink>();
  ASSERT_TRUE(kernel
                  .InvokeAndRun(terminal.uid(), "Connect",
                                Value().Set("source", Value(source.uid())))
                  .ok());
  kernel.RunUntil([&] { return terminal.idle(); });
  EXPECT_EQ(terminal.screen(), (std::vector<std::string>{"x"}));
}

TEST(PrinterTest, PaginatesOutput) {
  Kernel kernel;
  ValueList many;
  for (int i = 0; i < 7; ++i) {
    many.push_back(Value(std::to_string(i)));
  }
  PrinterOptions options;
  options.lines_per_page = 3;
  VectorSource& source = kernel.CreateLocal<VectorSource>(std::move(many));
  PrinterSink& printer = kernel.CreateLocal<PrinterSink>(options);
  printer.Print(source.uid(), Value(std::string(kChanOut)));
  kernel.RunUntil([&] { return printer.idle(); });
  ASSERT_EQ(printer.pages().size(), 3u);  // 3 + 3 + 1
  EXPECT_EQ(printer.pages()[0].size(), 3u);
  EXPECT_EQ(printer.pages()[2], (std::vector<std::string>{"6"}));
  EXPECT_EQ(printer.jobs_completed(), 1u);
}

TEST(PrinterTest, PrintsAFileDirectly) {
  // "A file could be printed simply by requesting the printer server to
  // read from the file." (§4)
  Kernel kernel;
  FileEject& file = kernel.CreateLocal<FileEject>("p\nq\n");
  PrinterSink& printer = kernel.CreateLocal<PrinterSink>();
  ASSERT_TRUE(kernel
                  .InvokeAndRun(printer.uid(), "Print",
                                Value().Set("source", Value(file.uid())))
                  .ok());
  kernel.RunUntil([&] { return printer.idle(); });
  ASSERT_EQ(printer.pages().size(), 1u);
  EXPECT_EQ(printer.pages()[0], (std::vector<std::string>{"p", "q"}));
}

TEST(ReportWindowTest, ReadsFromMultipleSources) {
  // Figure 4: "It is assumed that the Report Window is designed to read from
  // multiple sources."
  Kernel kernel;
  VectorSource& a = kernel.CreateLocal<VectorSource>(Lines({"r1", "r2"}));
  VectorSource& b = kernel.CreateLocal<VectorSource>(Lines({"s1"}));
  ReportWindow& window = kernel.CreateLocal<ReportWindow>();
  window.Attach(a.uid(), Value(std::string(kChanOut)), "A");
  window.Attach(b.uid(), Value(std::string(kChanOut)), "B");
  kernel.RunUntil([&] { return window.idle(); });
  std::vector<std::string> sorted = window.lines();
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, (std::vector<std::string>{"A: r1", "A: r2", "B: s1"}));
}

TEST(NullSinkTest, DiscardsEverything) {
  Kernel kernel;
  VectorSource& source = kernel.CreateLocal<VectorSource>(Lines({"a", "b", "c"}));
  NullSink& null = kernel.CreateLocal<NullSink>(source.uid(),
                                                Value(std::string(kChanOut)));
  kernel.RunUntil([&] { return null.done(); });
  EXPECT_EQ(null.discarded(), 3u);
}

TEST(NullSinkTest, BoundsInfiniteSources) {
  Kernel kernel;
  ClockSource& clock = kernel.CreateLocal<ClockSource>();
  NullSink& null = kernel.CreateLocal<NullSink>(clock.uid(),
                                                Value(std::string(kChanOut)),
                                                /*max_items=*/25);
  kernel.RunUntil([&] { return null.done(); });
  EXPECT_EQ(null.discarded(), 25u);
}

TEST(ClockSourceTest, ReturnsAdvancingVirtualTime) {
  Kernel kernel;
  ClockSource& clock = kernel.CreateLocal<ClockSource>();
  InvokeResult first = kernel.InvokeAndRun(clock.uid(), "Transfer",
                                           MakeTransferArgs(Value(0), 1));
  InvokeResult second = kernel.InvokeAndRun(clock.uid(), "Transfer",
                                            MakeTransferArgs(Value(0), 1));
  ASSERT_TRUE(first.ok() && second.ok());
  std::string t1 = (*first.value.Field(kFieldItems).AsList())[0].StrOr("");
  std::string t2 = (*second.value.Field(kFieldItems).AsList())[0].StrOr("");
  EXPECT_NE(t1, t2);  // virtual time advanced between reads
  EXPECT_EQ(t1.rfind("tick ", 0), 0u);
}

TEST(RandomSourceTest, DeterministicAndBounded) {
  auto run = [](uint64_t seed) {
    Kernel kernel;
    RandomSource& source = kernel.CreateLocal<RandomSource>(seed, 10);
    PullSink& sink = kernel.CreateLocal<PullSink>(source.uid(),
                                                  Value(std::string(kChanOut)));
    kernel.RunUntil([&] { return sink.done(); });
    std::vector<std::string> lines;
    for (const Value& item : sink.items()) {
      lines.push_back(item.StrOr(""));
    }
    return lines;
  };
  auto a = run(5);
  auto b = run(5);
  auto c = run(6);
  EXPECT_EQ(a.size(), 10u);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}


TEST(KeyboardTest, LinesArriveOnScheduleAndReadersWait) {
  Kernel kernel;
  std::vector<Keystroke> script = {{1000, "first"}, {5000, "second"}};
  KeyboardSource& keyboard = kernel.CreateLocal<KeyboardSource>(script);
  TerminalSink& terminal = kernel.CreateLocal<TerminalSink>();
  terminal.Connect(keyboard.uid(), Value(std::string(kChanOut)));

  // Before the first keystroke: the terminal's Read is parked.
  kernel.RunFor(500);
  EXPECT_EQ(terminal.screen().size(), 0u);
  EXPECT_EQ(keyboard.server().parked_requests(kChanOut), 1u);

  kernel.RunFor(2000);  // past the first keystroke
  EXPECT_EQ(terminal.screen(), (std::vector<std::string>{"first"}));

  kernel.RunUntil([&] { return terminal.idle(); });
  EXPECT_EQ(terminal.screen(), (std::vector<std::string>{"first", "second"}));
  EXPECT_GE(kernel.now(), 6000);  // the typing schedule governed the run
}

TEST(KeyboardTest, EmptyScriptEndsImmediately) {
  Kernel kernel;
  KeyboardSource& keyboard =
      kernel.CreateLocal<KeyboardSource>(std::vector<Keystroke>{});
  NullSink& sink = kernel.CreateLocal<NullSink>(keyboard.uid(),
                                                Value(std::string(kChanOut)));
  kernel.RunUntil([&] { return sink.done(); });
  EXPECT_EQ(sink.discarded(), 0u);
}

}  // namespace
}  // namespace eden
