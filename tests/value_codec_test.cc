// Value, Codec, Uid and framing unit tests.
#include <gtest/gtest.h>

#include "src/core/framing.h"
#include "src/eden/codec.h"
#include "src/eden/random.h"
#include "src/eden/uid.h"
#include "src/eden/value.h"

namespace eden {
namespace {

TEST(UidTest, GeneratorIsDeterministic) {
  UidGenerator a(42);
  UidGenerator b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(UidTest, GeneratorsWithDifferentSeedsDiverge) {
  UidGenerator a(1);
  UidGenerator b(2);
  EXPECT_NE(a.Next(), b.Next());
}

TEST(UidTest, NoCollisionsInLargeSample) {
  UidGenerator gen(7);
  std::set<std::pair<uint64_t, uint64_t>> seen;
  for (int i = 0; i < 100000; ++i) {
    Uid uid = gen.Next();
    EXPECT_TRUE(seen.insert({uid.hi(), uid.lo()}).second);
  }
}

TEST(UidTest, ParseRoundTrip) {
  UidGenerator gen(3);
  for (int i = 0; i < 20; ++i) {
    Uid uid = gen.Next();
    auto parsed = Uid::Parse(uid.ToString());
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, uid);
  }
}

TEST(UidTest, ParseRejectsMalformed) {
  EXPECT_FALSE(Uid::Parse("").has_value());
  EXPECT_FALSE(Uid::Parse("eden:").has_value());
  EXPECT_FALSE(Uid::Parse("eden:0123456789abcdef-0123456789abcdeg").has_value());
  EXPECT_FALSE(Uid::Parse("uid:0123456789abcdef-0123456789abcdef").has_value());
  EXPECT_TRUE(Uid::Parse("eden:0123456789abcdef-0123456789abcdef").has_value());
}

TEST(UidTest, NilIsNeverGenerated) {
  EXPECT_TRUE(Uid().IsNil());
  UidGenerator gen(0);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_FALSE(gen.Next().IsNil());
  }
}

TEST(ValueTest, KindsAndAccessors) {
  EXPECT_TRUE(Value().is_nil());
  EXPECT_EQ(Value(true).AsBool(), true);
  EXPECT_EQ(Value(7).AsInt(), 7);
  EXPECT_EQ(Value(2.5).AsReal(), 2.5);
  EXPECT_EQ(Value(3).AsReal(), 3.0);  // int widens to real
  EXPECT_EQ(*Value("hi").AsStr(), "hi");
  EXPECT_EQ(Value(Uid(1, 2)).AsUid(), Uid(1, 2));
  EXPECT_EQ(Value("hi").AsInt(), std::nullopt);
  EXPECT_EQ(Value(7).AsStr(), nullptr);
}

TEST(ValueTest, MapFieldAccess) {
  Value v;
  v.Set("a", Value(1)).Set("b", Value("x"));
  EXPECT_EQ(v.Field("a"), Value(1));
  EXPECT_EQ(v.Field("b"), Value("x"));
  EXPECT_TRUE(v.Field("missing").is_nil());
  EXPECT_TRUE(v.HasField("a"));
  EXPECT_FALSE(v.HasField("c"));
}

TEST(ValueTest, ListAppend) {
  Value v;
  v.Append(Value(1));
  v.Append(Value(2));
  ASSERT_TRUE(v.is_list());
  EXPECT_EQ(v.Size(), 2u);
}

TEST(ValueTest, StructuralEquality) {
  Value a = Value::Map({{"k", Value::List({Value(1), Value("s")})}});
  Value b = Value::Map({{"k", Value::List({Value(1), Value("s")})}});
  Value c = Value::Map({{"k", Value::List({Value(2), Value("s")})}});
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

TEST(ValueTest, ToStringIsReadable) {
  Value v = Value::Map({{"n", Value(3)}, {"s", Value("a\"b")}});
  EXPECT_EQ(v.ToString(), "{\"n\": 3, \"s\": \"a\\\"b\"}");
}

Value ArbitraryValue(Rng& rng, int depth) {
  switch (depth <= 0 ? rng.Below(7) : rng.Below(9)) {
    case 0:
      return Value();
    case 1:
      return Value(rng.Chance(0.5));
    case 2:
      return Value(static_cast<int64_t>(rng.Next()));
    case 3:
      return Value(static_cast<double>(rng.Range(-1000, 1000)) / 7.0);
    case 4:
      return Value(rng.Word(0, 20));
    case 5: {
      Bytes b;
      for (uint64_t i = rng.Below(16); i > 0; --i) {
        b.push_back(static_cast<uint8_t>(rng.Below(256)));
      }
      return Value(std::move(b));
    }
    case 6:
      return Value(Uid(rng.Next(), rng.Next()));
    case 7: {
      ValueList list;
      for (uint64_t i = rng.Below(5); i > 0; --i) {
        list.push_back(ArbitraryValue(rng, depth - 1));
      }
      return Value(std::move(list));
    }
    default: {
      ValueMap map;
      for (uint64_t i = rng.Below(5); i > 0; --i) {
        map[rng.Word(1, 8)] = ArbitraryValue(rng, depth - 1);
      }
      return Value(std::move(map));
    }
  }
}

TEST(CodecTest, RoundTripsArbitraryValues) {
  Rng rng(2024);
  for (int i = 0; i < 500; ++i) {
    Value v = ArbitraryValue(rng, 3);
    Bytes encoded = Codec::Encode(v);
    auto decoded = Codec::Decode(encoded);
    ASSERT_TRUE(decoded.has_value()) << v.ToString();
    EXPECT_EQ(*decoded, v) << v.ToString();
  }
}

TEST(CodecTest, EncodedSizeMatchesEncoding) {
  Rng rng(99);
  for (int i = 0; i < 200; ++i) {
    Value v = ArbitraryValue(rng, 3);
    EXPECT_EQ(Codec::EncodedSize(v), Codec::Encode(v).size()) << v.ToString();
  }
}

TEST(CodecTest, EncodingIsCanonical) {
  // Maps encode key-sorted regardless of insertion order.
  Value a;
  a.Set("z", Value(1)).Set("a", Value(2));
  Value b;
  b.Set("a", Value(2)).Set("z", Value(1));
  EXPECT_EQ(Codec::Encode(a), Codec::Encode(b));
}

TEST(CodecTest, RejectsTruncatedInput) {
  Value v = Value::Map({{"k", Value("hello world")}});
  Bytes encoded = Codec::Encode(v);
  for (size_t cut = 0; cut < encoded.size(); ++cut) {
    Bytes truncated(encoded.begin(), encoded.begin() + static_cast<long>(cut));
    EXPECT_FALSE(Codec::Decode(truncated).has_value()) << "cut=" << cut;
  }
}

TEST(CodecTest, RejectsTrailingGarbage) {
  Bytes encoded = Codec::Encode(Value(42));
  encoded.push_back(0x00);
  EXPECT_FALSE(Codec::Decode(encoded).has_value());
}

TEST(CodecTest, RejectsUnknownTag) {
  Bytes bogus = {0x7F};
  EXPECT_FALSE(Codec::Decode(bogus).has_value());
}


TEST(CodecTest, FuzzRandomBytesNeverCrash) {
  // Decode must be total: any byte string either decodes to a Value that
  // re-encodes (not necessarily canonically) or is cleanly rejected.
  Rng rng(0xF0221);
  for (int i = 0; i < 2000; ++i) {
    Bytes noise;
    for (uint64_t n = rng.Below(64); n > 0; --n) {
      noise.push_back(static_cast<uint8_t>(rng.Below(256)));
    }
    auto decoded = Codec::Decode(noise);
    if (decoded.has_value()) {
      // Whatever decoded must round-trip through the canonical encoding.
      Bytes reencoded = Codec::Encode(*decoded);
      auto redecoded = Codec::Decode(reencoded);
      ASSERT_TRUE(redecoded.has_value());
      EXPECT_EQ(*redecoded, *decoded);
    }
  }
}

TEST(CodecTest, FuzzMutatedValidEncodings) {
  // Bit-flip valid encodings: decode must never crash, and accepted mutants
  // must round-trip.
  Rng rng(0xF0222);
  for (int i = 0; i < 500; ++i) {
    Value v = ArbitraryValue(rng, 2);
    Bytes encoded = Codec::Encode(v);
    if (encoded.empty()) {
      continue;
    }
    encoded[rng.Below(encoded.size())] ^=
        static_cast<uint8_t>(1u << rng.Below(8));
    auto decoded = Codec::Decode(encoded);
    if (decoded.has_value()) {
      auto redecoded = Codec::Decode(Codec::Encode(*decoded));
      ASSERT_TRUE(redecoded.has_value());
      EXPECT_EQ(*redecoded, *decoded);
    }
  }
}

TEST(CodecTest, DeeplyNestedInputIsBounded) {
  // 100 nested list headers (beyond the decoder depth limit).
  Bytes bomb;
  for (int i = 0; i < 100; ++i) {
    bomb.push_back(0x08);  // list tag
    bomb.push_back(0x01);  // one element
  }
  bomb.push_back(0x00);  // nil
  EXPECT_FALSE(Codec::Decode(bomb).has_value());
}

TEST(FramingTest, SplitJoinLines) {
  ValueList lines = SplitLines("a\nbb\n\nccc\n");
  ASSERT_EQ(lines.size(), 4u);
  EXPECT_EQ(*lines[0].AsStr(), "a");
  EXPECT_EQ(*lines[2].AsStr(), "");
  EXPECT_EQ(JoinLines(lines), "a\nbb\n\nccc\n");
}

TEST(FramingTest, SplitHandlesMissingTrailingNewline) {
  ValueList lines = SplitLines("a\nb");
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(*lines[1].AsStr(), "b");
}

TEST(FramingTest, SplitEmpty) { EXPECT_TRUE(SplitLines("").empty()); }

TEST(FramingTest, FixedRecordsRoundTrip) {
  Bytes data;
  for (int i = 0; i < 100; ++i) {
    data.push_back(static_cast<uint8_t>(i));
  }
  ValueList records = FrameFixed(data, 16);
  EXPECT_EQ(records.size(), 7u);  // 6 full + 1 short
  EXPECT_EQ(UnframeFixed(records), data);
}

TEST(FramingTest, LengthPrefixedRoundTrip) {
  std::vector<Bytes> records = {{1, 2, 3}, {}, {0xFF}, Bytes(300, 7)};
  Bytes framed = FrameLengthPrefixed(records);
  auto unframed = UnframeLengthPrefixed(framed);
  ASSERT_TRUE(unframed.has_value());
  EXPECT_EQ(*unframed, records);
}

TEST(FramingTest, LengthPrefixedRejectsTruncation) {
  Bytes framed = FrameLengthPrefixed({{1, 2, 3, 4, 5}});
  framed.pop_back();
  EXPECT_FALSE(UnframeLengthPrefixed(framed).has_value());
}

}  // namespace
}  // namespace eden
