// Eden file system tests: File, Directory, Concatenator, paths, checkpoint
// recovery, and the §7 bootstrap UnixFileSystem.
#include <gtest/gtest.h>

#include "src/core/endpoints.h"
#include "src/core/stream.h"
#include "src/core/stream_reader.h"
#include "src/eden/kernel.h"
#include "src/fs/directory.h"
#include "src/fs/file.h"
#include "src/fs/path.h"
#include "src/fs/unix_fs.h"

namespace eden {
namespace {

std::vector<std::string> AsStrings(const ValueList& items) {
  std::vector<std::string> out;
  for (const Value& item : items) {
    out.push_back(item.StrOr(item.ToString()));
  }
  return out;
}

ValueList CollectFrom(Kernel& kernel, Uid source, Value channel) {
  PullSink& sink = kernel.CreateLocal<PullSink>(source, std::move(channel));
  kernel.RunUntil([&] { return sink.done(); });
  EXPECT_TRUE(sink.done());
  return sink.items();
}

// ---------------------------------------------------------------------- File

TEST(FileTest, StreamsContentAsLines) {
  Kernel kernel;
  FileEject& file = kernel.CreateLocal<FileEject>("one\ntwo\nthree\n");
  ValueList items = CollectFrom(kernel, file.uid(), Value(std::string(kChanOut)));
  EXPECT_EQ(AsStrings(items), (std::vector<std::string>{"one", "two", "three"}));
}

TEST(FileTest, SharedChannelRewindsForNextReader) {
  Kernel kernel;
  FileEject& file = kernel.CreateLocal<FileEject>("a\nb\n");
  ValueList first = CollectFrom(kernel, file.uid(), Value(std::string(kChanOut)));
  ValueList second = CollectFrom(kernel, file.uid(), Value(std::string(kChanOut)));
  EXPECT_EQ(first, second);
}

TEST(FileTest, OpenGivesIndependentSessions) {
  Kernel kernel;
  FileEject& file = kernel.CreateLocal<FileEject>("a\nb\nc\n");
  InvokeResult s1 = kernel.InvokeAndRun(file.uid(), "Open");
  InvokeResult s2 = kernel.InvokeAndRun(file.uid(), "Open");
  ASSERT_TRUE(s1.ok() && s2.ok());
  Value chan1 = s1.value.Field(kFieldChannel);
  Value chan2 = s2.value.Field(kFieldChannel);
  EXPECT_NE(chan1, chan2);

  // Interleaved reads do not disturb each other.
  InvokeResult r1 = kernel.InvokeAndRun(file.uid(), "Transfer",
                                        MakeTransferArgs(chan1, 2));
  InvokeResult r2 = kernel.InvokeAndRun(file.uid(), "Transfer",
                                        MakeTransferArgs(chan2, 1));
  EXPECT_EQ(r1.value.Field(kFieldItems).Size(), 2u);
  EXPECT_EQ(r2.value.Field(kFieldItems).Size(), 1u);
  EXPECT_EQ((*r2.value.Field(kFieldItems).AsList())[0], Value("a"));
}

TEST(FileTest, CloseInvalidatesSession) {
  Kernel kernel;
  FileEject& file = kernel.CreateLocal<FileEject>("a\n");
  InvokeResult opened = kernel.InvokeAndRun(file.uid(), "Open");
  Value chan = opened.value.Field(kFieldChannel);
  ASSERT_TRUE(kernel.InvokeAndRun(file.uid(), "Close",
                                  Value().Set(std::string(kFieldChannel), chan))
                  .ok());
  InvokeResult r = kernel.InvokeAndRun(file.uid(), "Transfer",
                                       MakeTransferArgs(chan, 1));
  EXPECT_TRUE(r.status.is(StatusCode::kNoSuchChannel));
}

TEST(FileTest, WriteAppendsLines) {
  Kernel kernel;
  FileEject& file = kernel.CreateLocal<FileEject>("first\n");
  Value args;
  args.Set(std::string(kFieldItems),
           Value(ValueList{Value("second"), Value("third")}));
  ASSERT_TRUE(kernel.InvokeAndRun(file.uid(), "Write", args).ok());
  EXPECT_EQ(file.ContentsAsText(), "first\nsecond\nthird\n");
}

TEST(FileTest, AbsorbPullsWholeStreamAndCheckpoints) {
  // §4: "A file opened for output would immediately issue a Read invocation,
  // and would continue reading until it received an end of file indicator."
  Kernel kernel;
  FileEject::RegisterType(kernel);
  VectorSource& source = kernel.CreateLocal<VectorSource>(
      ValueList{Value("x"), Value("y"), Value("z")});
  FileEject& file = kernel.CreateLocal<FileEject>();
  InvokeResult r = kernel.InvokeAndRun(file.uid(), "Absorb",
                                       Value().Set("source", Value(source.uid())));
  ASSERT_TRUE(r.ok()) << r.status;
  EXPECT_EQ(r.value.Field("count"), Value(3));
  EXPECT_EQ(file.ContentsAsText(), "x\ny\nz\n");
  // Absorb checkpointed: a crash must not lose the data.
  Uid uid = file.uid();
  kernel.Crash(uid);
  InvokeResult size = kernel.InvokeAndRun(uid, "Size");
  ASSERT_TRUE(size.ok());
  EXPECT_EQ(size.value.Field("lines"), Value(3));
}

TEST(FileTest, UncheckpointedWritesAreLostOnCrash) {
  Kernel kernel;
  FileEject::RegisterType(kernel);
  FileEject& file = kernel.CreateLocal<FileEject>("kept\n");
  Uid uid = file.uid();
  (void)kernel.InvokeAndRun(uid, "Checkpoint");
  Value args;
  args.Set(std::string(kFieldItems), Value(ValueList{Value("volatile")}));
  (void)kernel.InvokeAndRun(uid, "Write", args);
  kernel.Crash(uid);
  InvokeResult size = kernel.InvokeAndRun(uid, "Size");
  EXPECT_EQ(size.value.Field("lines"), Value(1));  // "volatile" gone
}

// ----------------------------------------------------------------- Directory

TEST(DirectoryTest, AddLookupDelete) {
  Kernel kernel;
  DirectoryEject& dir = kernel.CreateLocal<DirectoryEject>();
  Uid target(7, 8);
  Value add;
  add.Set("name", Value("alpha")).Set("uid", Value(target));
  ASSERT_TRUE(kernel.InvokeAndRun(dir.uid(), "AddEntry", add).ok());

  InvokeResult found = kernel.InvokeAndRun(dir.uid(), "Lookup",
                                           Value().Set("name", Value("alpha")));
  ASSERT_TRUE(found.ok());
  EXPECT_EQ(found.value.Field("uid"), Value(target));

  EXPECT_TRUE(kernel.InvokeAndRun(dir.uid(), "AddEntry", add)
                  .status.is(StatusCode::kAlreadyExists));
  ASSERT_TRUE(kernel.InvokeAndRun(dir.uid(), "DeleteEntry",
                                  Value().Set("name", Value("alpha")))
                  .ok());
  EXPECT_TRUE(kernel.InvokeAndRun(dir.uid(), "Lookup",
                                  Value().Set("name", Value("alpha")))
                  .status.is(StatusCode::kNotFound));
}

TEST(DirectoryTest, ListStreamsPrintableRepresentation) {
  // §4: directories behave as sources; List prepares a stream of Reads.
  Kernel kernel;
  DirectoryEject& dir = kernel.CreateLocal<DirectoryEject>();
  dir.AddEntryLocal("beta", Uid(1, 1));
  dir.AddEntryLocal("alpha", Uid(2, 2));

  InvokeResult listed = kernel.InvokeAndRun(dir.uid(), "List");
  ASSERT_TRUE(listed.ok());
  Value chan = listed.value.Field(kFieldChannel);
  ValueList lines = CollectFrom(kernel, dir.uid(), chan);
  std::vector<std::string> strings = AsStrings(lines);
  ASSERT_EQ(strings.size(), 3u);
  EXPECT_EQ(strings[0].rfind("alpha\t", 0), 0u);  // sorted
  EXPECT_EQ(strings[1].rfind("beta\t", 0), 0u);
  EXPECT_EQ(strings[2], "total 2");
}

TEST(DirectoryTest, ListingSessionIsSingleUse) {
  Kernel kernel;
  DirectoryEject& dir = kernel.CreateLocal<DirectoryEject>();
  dir.AddEntryLocal("x", Uid(1, 1));
  InvokeResult listed = kernel.InvokeAndRun(dir.uid(), "List");
  Value chan = listed.value.Field(kFieldChannel);
  (void)CollectFrom(kernel, dir.uid(), chan);
  InvokeResult again = kernel.InvokeAndRun(dir.uid(), "Transfer",
                                           MakeTransferArgs(chan, 1));
  EXPECT_TRUE(again.status.is(StatusCode::kNoSuchChannel));
}

TEST(DirectoryTest, CheckpointedDirectorySurvivesCrash) {
  Kernel kernel;
  DirectoryEject::RegisterType(kernel);
  DirectoryEject& dir = kernel.CreateLocal<DirectoryEject>();
  Uid uid = dir.uid();
  dir.AddEntryLocal("persist", Uid(3, 4));
  (void)kernel.InvokeAndRun(uid, "Checkpoint");
  kernel.Crash(uid);
  InvokeResult found = kernel.InvokeAndRun(uid, "Lookup",
                                           Value().Set("name", Value("persist")));
  ASSERT_TRUE(found.ok()) << found.status;
  EXPECT_EQ(found.value.Field("uid"), Value(Uid(3, 4)));
}

TEST(DirectoryTest, ConcatenatorSearchesInOrder) {
  // §2: the PATH-like Directory Concatenator.
  Kernel kernel;
  DirectoryEject& first = kernel.CreateLocal<DirectoryEject>();
  DirectoryEject& second = kernel.CreateLocal<DirectoryEject>();
  first.AddEntryLocal("both", Uid(1, 0));
  second.AddEntryLocal("both", Uid(2, 0));
  second.AddEntryLocal("only2", Uid(3, 0));
  DirectoryConcatenator& path = kernel.CreateLocal<DirectoryConcatenator>(
      std::vector<Uid>{first.uid(), second.uid()});

  InvokeResult both = kernel.InvokeAndRun(path.uid(), "Lookup",
                                          Value().Set("name", Value("both")));
  EXPECT_EQ(both.value.Field("uid"), Value(Uid(1, 0)));  // first wins
  InvokeResult only2 = kernel.InvokeAndRun(path.uid(), "Lookup",
                                           Value().Set("name", Value("only2")));
  EXPECT_EQ(only2.value.Field("uid"), Value(Uid(3, 0)));
  InvokeResult missing = kernel.InvokeAndRun(path.uid(), "Lookup",
                                             Value().Set("name", Value("nope")));
  EXPECT_TRUE(missing.status.is(StatusCode::kNotFound));
}

TEST(DirectoryTest, ConcatenatorListsAllDirectories) {
  Kernel kernel;
  DirectoryEject& first = kernel.CreateLocal<DirectoryEject>();
  DirectoryEject& second = kernel.CreateLocal<DirectoryEject>();
  first.AddEntryLocal("a", Uid(1, 0));
  second.AddEntryLocal("b", Uid(2, 0));
  DirectoryConcatenator& path = kernel.CreateLocal<DirectoryConcatenator>(
      std::vector<Uid>{first.uid(), second.uid()});
  InvokeResult listed = kernel.InvokeAndRun(path.uid(), "List");
  ASSERT_TRUE(listed.ok());
  ValueList lines = CollectFrom(kernel, path.uid(),
                                listed.value.Field(kFieldChannel));
  EXPECT_EQ(lines.size(), 4u);  // a, total 1, b, total 1
}

// ---------------------------------------------------------------------- Path

TEST(PathTest, SplitPath) {
  EXPECT_EQ(SplitPath("a/b/c"), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(SplitPath("/a//b/"), (std::vector<std::string>{"a", "b"}));
  EXPECT_TRUE(SplitPath("").empty());
  EXPECT_TRUE(SplitPath("///").empty());
}

TEST(PathTest, ResolvesThroughNestedDirectories) {
  Kernel kernel;
  DirectoryEject& root = kernel.CreateLocal<DirectoryEject>();
  DirectoryEject& sub = kernel.CreateLocal<DirectoryEject>();
  FileEject& file = kernel.CreateLocal<FileEject>("data\n");
  root.AddEntryLocal("sub", sub.uid());
  sub.AddEntryLocal("file", file.uid());

  ResolveResult r = ResolvePathBlocking(kernel, root.uid(), "sub/file");
  ASSERT_TRUE(r.ok()) << r.status;
  EXPECT_EQ(r.uid, file.uid());

  ResolveResult missing = ResolvePathBlocking(kernel, root.uid(), "sub/nope");
  EXPECT_TRUE(missing.status.is(StatusCode::kNotFound));
}

TEST(PathTest, CyclicDirectoriesResolveFinitely) {
  // "arbitrary networks of directories can be constructed" (§2) — including
  // cycles; resolution of a looping path is depth-limited.
  Kernel kernel;
  DirectoryEject& a = kernel.CreateLocal<DirectoryEject>();
  DirectoryEject& b = kernel.CreateLocal<DirectoryEject>();
  a.AddEntryLocal("b", b.uid());
  b.AddEntryLocal("a", a.uid());

  // A long but legal walk around the cycle succeeds...
  std::string path = "b/a/b/a/b";
  ResolveResult ok = ResolvePathBlocking(kernel, a.uid(), path);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.uid, b.uid());

  // ...but a walk beyond the depth limit is rejected rather than looping.
  std::string deep;
  for (int i = 0; i < kMaxPathDepth + 1; ++i) {
    deep += i % 2 == 0 ? "b/" : "a/";
  }
  ResolveResult too_deep = ResolvePathBlocking(kernel, a.uid(), deep);
  EXPECT_TRUE(too_deep.status.is(StatusCode::kInvalidArgument));
}

// --------------------------------------------------------------- UnixFS (§7)

TEST(UnixFsTest, NewStreamStreamsHostFileThenDisappears) {
  Kernel kernel;
  HostFs host;
  host.Put("/src/hello.txt", "hello\nworld\n");
  UnixFileSystemEject& ufs = kernel.CreateLocal<UnixFileSystemEject>(host);

  InvokeResult opened = kernel.InvokeAndRun(
      ufs.uid(), "NewStream", Value().Set("path", Value("/src/hello.txt")));
  ASSERT_TRUE(opened.ok());
  auto stream = opened.value.Field("stream").AsUid();
  ASSERT_TRUE(stream.has_value());

  ValueList items = CollectFrom(kernel, *stream, Value(std::string(kChanOut)));
  EXPECT_EQ(AsStrings(items), (std::vector<std::string>{"hello", "world"}));

  // "the UnixFile Eject deactivates itself and, since it has never
  // Checkpointed, disappears." (§7)
  kernel.Run();
  EXPECT_FALSE(kernel.IsActive(*stream));
  InvokeResult gone = kernel.InvokeAndRun(*stream, "Transfer",
                                          MakeTransferArgs(Value(0), 1));
  EXPECT_TRUE(gone.status.is(StatusCode::kNoSuchEject));
}

TEST(UnixFsTest, NewStreamForMissingPathFails) {
  Kernel kernel;
  HostFs host;
  UnixFileSystemEject& ufs = kernel.CreateLocal<UnixFileSystemEject>(host);
  InvokeResult r = kernel.InvokeAndRun(ufs.uid(), "NewStream",
                                       Value().Set("path", Value("/absent")));
  EXPECT_TRUE(r.status.is(StatusCode::kNotFound));
}

TEST(UnixFsTest, UseStreamRecordsStreamIntoHostFile) {
  Kernel kernel;
  HostFs host;
  UnixFileSystemEject& ufs = kernel.CreateLocal<UnixFileSystemEject>(host);
  VectorSource& source = kernel.CreateLocal<VectorSource>(
      ValueList{Value("alpha"), Value("beta")});

  InvokeResult used = kernel.InvokeAndRun(
      ufs.uid(), "UseStream",
      Value().Set("path", Value("/dst/out.txt")).Set("source", Value(source.uid())));
  ASSERT_TRUE(used.ok());
  auto file = used.value.Field("file").AsUid();
  ASSERT_TRUE(file.has_value());

  kernel.Run();
  EXPECT_EQ(host.Get("/dst/out.txt"), "alpha\nbeta\n");
  EXPECT_FALSE(kernel.IsActive(*file));  // transient sink vanished
}

TEST(UnixFsTest, RoundTripCopyThroughEdenStreams) {
  // The §7 bootstrap end to end: Unix file -> Eden stream -> Unix file.
  Kernel kernel;
  HostFs host;
  host.Put("/a", "1\n2\n3\n");
  UnixFileSystemEject& ufs = kernel.CreateLocal<UnixFileSystemEject>(host);

  InvokeResult opened = kernel.InvokeAndRun(ufs.uid(), "NewStream",
                                            Value().Set("path", Value("/a")));
  InvokeResult used = kernel.InvokeAndRun(
      ufs.uid(), "UseStream",
      Value()
          .Set("path", Value("/b"))
          .Set("source", Value(*opened.value.Field("stream").AsUid())));
  ASSERT_TRUE(used.ok());
  kernel.Run();
  EXPECT_EQ(host.Get("/b"), host.Get("/a"));
}

}  // namespace
}  // namespace eden
