// Cross-module integration tests: the paper's figure topologies end to end,
// failure injection across pipelines, and bootstrap + filters + devices
// working together.
#include <gtest/gtest.h>

#include "src/core/endpoints.h"
#include "src/core/filter_eject.h"
#include "src/core/passive_buffer.h"
#include "src/core/pipeline.h"
#include "src/devices/devices.h"
#include "src/eden/kernel.h"
#include "src/filters/registry.h"
#include "src/filters/transforms.h"
#include "src/fs/directory.h"
#include "src/fs/file.h"
#include "src/fs/unix_fs.h"
#include "src/shell/shell.h"

namespace eden {
namespace {

ValueList NumberedLines(int n) {
  ValueList items;
  for (int i = 0; i < n; ++i) {
    items.push_back(Value("line " + std::to_string(i)));
  }
  return items;
}

// Figure 3: write-only pipeline where the source and a middle filter emit
// report streams to a shared window.
TEST(FigureTest, Figure3WriteOnlyWithReports) {
  Kernel kernel;

  PushSource::Options source_options;
  source_options.report_every = 4;
  PushSource& source =
      kernel.CreateLocal<PushSource>(NumberedLines(12), source_options);

  auto reporting = std::make_unique<ReportingTransform>(
      std::make_unique<GrepTransform>("line"), 6);
  WriteOnlyFilter& f1 = kernel.CreateLocal<WriteOnlyFilter>(std::move(reporting));
  WriteOnlyFilter& f2 = kernel.CreateLocal<WriteOnlyFilter>(
      std::make_unique<LineNumberTransform>());

  PushSink& sink = kernel.CreateLocal<PushSink>();
  // Reports go to a common destination, "perhaps a window on a display".
  PushSink& window = kernel.CreateLocal<PushSink>();

  f2.BindOutput(std::string(kChanOut), sink.uid(), Value(std::string(kChanIn)));
  f1.BindOutput(std::string(kChanOut), f2.uid(), Value(std::string(kChanIn)));
  f1.BindOutput(std::string(kChanReport), window.uid(), Value(std::string(kChanIn)));
  source.BindOutput(f1.uid(), Value(std::string(kChanIn)));
  source.BindReport(window.uid(), Value(std::string(kChanIn)));

  kernel.RunUntil([&] { return sink.done(); });
  kernel.Run(100000);  // let the report streams drain

  EXPECT_EQ(sink.items().size(), 12u);
  // Window saw reports from BOTH source (every 4: 3 of them) and f1
  // (every 6: 2 + final): write-only fan-out needs no extra machinery.
  EXPECT_EQ(window.items().size(), 6u);
}

// Figure 4: the same topology in the read-only discipline with channel
// identifiers, and a multi-source ReportWindow.
TEST(FigureTest, Figure4ReadOnlyWithChannelIdentifiers) {
  Kernel kernel;

  VectorSource::Options source_options;
  source_options.report_every = 4;
  VectorSource& source =
      kernel.CreateLocal<VectorSource>(NumberedLines(12), source_options);

  ReadOnlyFilter::Options f1_options;
  f1_options.source = source.uid();
  ReadOnlyFilter& f1 = kernel.CreateLocal<ReadOnlyFilter>(
      std::make_unique<ReportingTransform>(std::make_unique<GrepTransform>("line"), 6),
      f1_options);

  ReadOnlyFilter::Options f2_options;
  f2_options.source = f1.uid();
  ReadOnlyFilter& f2 = kernel.CreateLocal<ReadOnlyFilter>(
      std::make_unique<LineNumberTransform>(), f2_options);

  PullSink& sink = kernel.CreateLocal<PullSink>(f2.uid(),
                                                Value(std::string(kChanOut)));
  ReportWindow& window = kernel.CreateLocal<ReportWindow>();
  // Double lines in the figure: Read(ReportStream) requests.
  window.Attach(source.uid(), Value(std::string(kChanReport)), "source");
  window.Attach(f1.uid(), Value(std::string(kChanReport)), "F1");

  kernel.RunUntil([&] { return sink.done() && window.idle(); });

  EXPECT_EQ(sink.items().size(), 12u);
  EXPECT_EQ(window.lines().size(), 6u);
  // Census: same function as Figure 3, but no passive buffers anywhere.
  // source, f1, f2, sink, window = 5 Ejects.
  EXPECT_EQ(kernel.stats().ejects_created, 5u);
}

// A filter crash mid-stream surfaces at the sink as a failed stream, not a
// hang.
TEST(FailureTest, FilterCrashTerminatesPipeline) {
  Kernel kernel;
  PipelineOptions options;
  options.work_ahead = 1;
  PipelineHandle handle =
      BuildPipeline(kernel, NumberedLines(100),
                    {*MakeTransformByName("copy", {}),
                     *MakeTransformByName("copy", {})},
                    options);
  kernel.RunUntil([&] { return handle.output().size() >= 5; });
  kernel.Crash(handle.ejects[1]);  // first filter
  kernel.RunUntil([&] { return handle.done(); });
  ASSERT_TRUE(handle.done());
  EXPECT_FALSE(handle.pull_sink->stream_status().ok_or_end());
  EXPECT_LT(handle.output().size(), 100u);
}

// A crashed-but-checkpointed FILE reactivates transparently mid-pipeline:
// the reader's next Transfer triggers kernel activation (§1).
TEST(FailureTest, CheckpointedSourceReactivatesUnderReads) {
  Kernel kernel;
  FileEject::RegisterType(kernel);
  std::string text;
  for (int i = 0; i < 50; ++i) {
    text += "row " + std::to_string(i) + "\n";
  }
  FileEject& file = kernel.CreateLocal<FileEject>(text);
  Uid file_uid = file.uid();
  (void)kernel.InvokeAndRun(file_uid, "Checkpoint");

  // Open a private session and read a few batches.
  InvokeResult opened = kernel.InvokeAndRun(file_uid, "Open");
  Value session = opened.value.Field(kFieldChannel);
  (void)kernel.InvokeAndRun(file_uid, "Transfer", MakeTransferArgs(session, 10));

  kernel.Crash(file_uid);

  // The session died with the instance (it was volatile state)...
  InvokeResult dead = kernel.InvokeAndRun(file_uid, "Transfer",
                                          MakeTransferArgs(session, 10));
  EXPECT_TRUE(dead.status.is(StatusCode::kNoSuchChannel));
  EXPECT_TRUE(kernel.IsActive(file_uid));  // ...but the file reactivated

  // The shared channel still serves the full checkpointed content.
  PullSink& sink = kernel.CreateLocal<PullSink>(file_uid,
                                                Value(std::string(kChanOut)));
  kernel.RunUntil([&] { return sink.done(); });
  EXPECT_EQ(sink.items().size(), 50u);
}

// Bootstrap + filters + devices: read a host file, strip Fortran comments,
// paginate, and print — the paper's §4 scenario on the §7 bootstrap.
TEST(EndToEndTest, FortranListingThroughPrinter) {
  Kernel kernel;
  HostFs host;
  std::string program;
  for (int i = 0; i < 12; ++i) {
    program += (i % 3 == 0) ? "C comment " + std::to_string(i) + "\n"
                            : "      X" + std::to_string(i) + " = " +
                                  std::to_string(i) + "\n";
  }
  host.Put("/src/prog.f", program);
  UnixFileSystemEject& ufs = kernel.CreateLocal<UnixFileSystemEject>(host);

  InvokeResult opened = kernel.InvokeAndRun(
      ufs.uid(), "NewStream", Value().Set("path", Value("/src/prog.f")));
  ASSERT_TRUE(opened.ok());
  Uid stream = *opened.value.Field("stream").AsUid();

  ReadOnlyFilter::Options strip_options;
  strip_options.source = stream;
  ReadOnlyFilter& strip = kernel.CreateLocal<ReadOnlyFilter>(
      std::make_unique<StripPrefixTransform>("C"), strip_options);

  ReadOnlyFilter::Options paginate_options;
  paginate_options.source = strip.uid();
  ReadOnlyFilter& paginate = kernel.CreateLocal<ReadOnlyFilter>(
      std::make_unique<PaginateTransform>(4, "prog.f"), paginate_options);

  // "If a paginated listing were required, the printer server would be
  // requested to read from the paginator, and the paginator to read from
  // the file." (§4)
  PrinterSink& printer = kernel.CreateLocal<PrinterSink>();
  printer.Print(paginate.uid(), Value(std::string(kChanOut)));
  kernel.RunUntil([&] { return printer.idle(); });

  ASSERT_FALSE(printer.pages().empty());
  // 8 non-comment lines + 2 page headers + 1 footer = 11 lines.
  size_t total = 0;
  for (const auto& page : printer.pages()) {
    total += page.size();
  }
  EXPECT_EQ(total, 11u);
  EXPECT_EQ(printer.pages()[0][0], "---- prog.f page 1 ----");
}

// Directory-driven workflow: bind a name through a directory, run a shell
// pipeline over it, store the result as a new file, list the directory.
TEST(EndToEndTest, DirectoryShellRoundTrip) {
  Kernel kernel;
  EdenShell shell(kernel);
  DirectoryEject& home = kernel.CreateLocal<DirectoryEject>();
  FileEject& input = kernel.CreateLocal<FileEject>("b\na\nb\n");
  FileEject& output = kernel.CreateLocal<FileEject>();
  home.AddEntryLocal("input", input.uid());
  home.AddEntryLocal("output", output.uid());

  shell.Bind("input", input.uid());
  shell.Bind("output", output.uid());
  ShellResult r = shell.Run("cat input | sort | uniq | tofile output");
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(output.ContentsAsText(), "a\nb\n");

  InvokeResult listed = kernel.InvokeAndRun(home.uid(), "List");
  ASSERT_TRUE(listed.ok());
  PullSink& sink = kernel.CreateLocal<PullSink>(home.uid(),
                                                listed.value.Field(kFieldChannel));
  kernel.RunUntil([&] { return sink.done(); });
  EXPECT_EQ(sink.items().size(), 3u);  // 2 entries + total line
}

// The same data crosses nodes: pipeline spread over distinct nodes produces
// identical output and counts cross-node messages.
TEST(EndToEndTest, DistributedPipeline) {
  Kernel kernel;
  PipelineOptions options;
  options.distinct_nodes = true;
  ValueList output = RunPipeline(kernel, NumberedLines(20),
                                 {*MakeTransformByName("upper", {})}, options);
  EXPECT_EQ(output.size(), 20u);
  EXPECT_GT(kernel.stats().cross_node_messages, 0u);
}

// Pipelines over pipelines: a tee filter feeding BOTH a terminal and a file
// (fan-out via channels), with the file then re-read to verify.
TEST(EndToEndTest, TeeToTerminalAndFile) {
  Kernel kernel;
  VectorSource& source = kernel.CreateLocal<VectorSource>(NumberedLines(5));
  ReadOnlyFilter::Options tee_options;
  tee_options.source = source.uid();
  ReadOnlyFilter& tee =
      kernel.CreateLocal<ReadOnlyFilter>(std::make_unique<TeeTransform>(), tee_options);

  TerminalSink& terminal = kernel.CreateLocal<TerminalSink>();
  terminal.Connect(tee.uid(), Value(std::string(kChanOut)));

  FileEject& file = kernel.CreateLocal<FileEject>();
  bool absorbed = false;
  kernel.ExternalInvoke(file.uid(), "Absorb",
                        Value().Set("source", Value(tee.uid()))
                            .Set(std::string(kFieldChannel), Value("copy")),
                        [&](InvokeResult r) {
                          EXPECT_TRUE(r.ok()) << r.status;
                          absorbed = true;
                        });
  kernel.RunUntil([&] { return absorbed && terminal.idle(); });
  EXPECT_EQ(terminal.screen().size(), 5u);
  EXPECT_EQ(file.line_count(), 5u);
}

}  // namespace
}  // namespace eden
