// Core transput tests: the four primitives, passive buffers, the three
// disciplines, and the §4 invocation-count claims.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/core/endpoints.h"
#include "src/core/filter_eject.h"
#include "src/core/passive_buffer.h"
#include "src/core/pipeline.h"
#include "src/core/stream.h"
#include "src/eden/kernel.h"

namespace eden {
namespace {

ValueList MakeInts(int n) {
  ValueList items;
  for (int i = 0; i < n; ++i) {
    items.push_back(Value(int64_t{i}));
  }
  return items;
}

TransformFactory Identity() {
  return [] {
    return std::make_unique<LambdaTransform>(
        "identity", [](const Value& v, const Transform::EmitFn& emit) {
          emit(kChanOut, v);
        });
  };
}

TransformFactory Doubler() {
  return [] {
    return std::make_unique<LambdaTransform>(
        "double", [](const Value& v, const Transform::EmitFn& emit) {
          emit(kChanOut, Value(v.IntOr(0) * 2));
        });
  };
}

TransformFactory EvenOnly() {
  return [] {
    return std::make_unique<LambdaTransform>(
        "even", [](const Value& v, const Transform::EmitFn& emit) {
          if (v.IntOr(1) % 2 == 0) {
            emit(kChanOut, v);
          }
        });
  };
}

TEST(StreamTest, SourceToSinkDirect) {
  Kernel kernel;
  VectorSource& source = kernel.CreateLocal<VectorSource>(MakeInts(5));
  PullSink& sink = kernel.CreateLocal<PullSink>(source.uid(),
                                                Value(std::string(kChanOut)));
  kernel.RunUntil([&] { return sink.done(); });
  EXPECT_EQ(sink.items(), MakeInts(5));
  EXPECT_TRUE(sink.stream_status().is(StatusCode::kEndOfStream));
}

TEST(StreamTest, EmptySourceEndsImmediately) {
  Kernel kernel;
  VectorSource& source = kernel.CreateLocal<VectorSource>(ValueList{});
  PullSink& sink = kernel.CreateLocal<PullSink>(source.uid(),
                                                Value(std::string(kChanOut)));
  kernel.RunUntil([&] { return sink.done(); });
  EXPECT_TRUE(sink.items().empty());
  EXPECT_TRUE(sink.done());
}

TEST(StreamTest, BatchedTransferMovesFewerMessages) {
  auto run = [](int64_t batch) {
    Kernel kernel;
    VectorSource::Options source_options;
    source_options.work_ahead = 16;  // enough buffered to fill whole batches
    VectorSource& source =
        kernel.CreateLocal<VectorSource>(MakeInts(64), source_options);
    PullSink::Options options;
    options.batch = batch;
    PullSink& sink = kernel.CreateLocal<PullSink>(
        source.uid(), Value(std::string(kChanOut)), options);
    kernel.RunUntil([&] { return sink.done(); });
    EXPECT_EQ(sink.items().size(), 64u);
    return kernel.stats().invocations_sent.load();
  };
  uint64_t unbatched = run(1);
  uint64_t batched = run(8);
  EXPECT_GT(unbatched, batched * 4);
}

TEST(StreamTest, PushSourceToPushSink) {
  Kernel kernel;
  PushSource& source = kernel.CreateLocal<PushSource>(MakeInts(5));
  PushSink& sink = kernel.CreateLocal<PushSink>();
  source.BindOutput(sink.uid(), Value(std::string(kChanIn)));
  kernel.RunUntil([&] { return sink.done(); });
  EXPECT_EQ(sink.items(), MakeInts(5));
}

TEST(StreamTest, PassiveBufferConnectsActiveWriterToActiveReader) {
  Kernel kernel;
  PushSource& source = kernel.CreateLocal<PushSource>(MakeInts(7));
  PassiveBuffer& pipe = kernel.CreateLocal<PassiveBuffer>();
  PullSink& sink = kernel.CreateLocal<PullSink>(pipe.uid(),
                                                Value(std::string(kChanOut)));
  source.BindOutput(pipe.uid(), Value(std::string(kChanIn)));
  kernel.RunUntil([&] { return sink.done(); });
  EXPECT_EQ(sink.items(), MakeInts(7));
  EXPECT_EQ(pipe.items_through(), 7u);
}

TEST(StreamTest, PassiveBufferFlowControlBoundsBuffering) {
  // A fast producer against an absent consumer must stall at the pipe's
  // capacity instead of buffering everything.
  Kernel kernel;
  PushSource& source = kernel.CreateLocal<PushSource>(MakeInts(100));
  PassiveBuffer::Options options;
  options.capacity = 4;
  PassiveBuffer& pipe = kernel.CreateLocal<PassiveBuffer>(options);
  source.BindOutput(pipe.uid(), Value(std::string(kChanIn)));
  kernel.Run();
  // Producer blocked: far fewer than 100 items produced.
  EXPECT_LT(source.produced_count(), 10u);

  PullSink& sink = kernel.CreateLocal<PullSink>(pipe.uid(),
                                                Value(std::string(kChanOut)));
  kernel.RunUntil([&] { return sink.done(); });
  EXPECT_EQ(sink.items().size(), 100u);
}

TEST(StreamTest, ReaderSurfacesSourceCrash) {
  Kernel kernel;
  VectorSource& source = kernel.CreateLocal<VectorSource>(MakeInts(1000));
  PullSink& sink = kernel.CreateLocal<PullSink>(source.uid(),
                                                Value(std::string(kChanOut)));
  // Let a few items through, then kill the source.
  kernel.RunUntil([&] { return sink.items().size() >= 3; });
  kernel.Crash(source.uid());
  kernel.RunUntil([&] { return sink.done(); });
  EXPECT_TRUE(sink.done());
  EXPECT_FALSE(sink.stream_status().ok_or_end());
  EXPECT_LT(sink.items().size(), 1000u);
}

// ---------------------------------------------------------------- disciplines

class DisciplineTest : public ::testing::TestWithParam<Discipline> {};

TEST_P(DisciplineTest, PureFilterChainProducesSameOutput) {
  Kernel kernel;
  PipelineOptions options;
  options.discipline = GetParam();
  ValueList output =
      RunPipeline(kernel, MakeInts(20), {EvenOnly(), Doubler(), Doubler()}, options);
  ValueList expected;
  for (int i = 0; i < 20; i += 2) {
    expected.push_back(Value(int64_t{i} * 4));
  }
  EXPECT_EQ(output, expected);
}

TEST_P(DisciplineTest, EjectCensusMatchesPrediction) {
  Kernel kernel;
  PipelineOptions options;
  options.discipline = GetParam();
  size_t before = kernel.active_eject_count();
  PipelineHandle handle =
      BuildPipeline(kernel, MakeInts(4), {Identity(), Identity(), Identity()}, options);
  EXPECT_EQ(handle.eject_count(), PredictedEjectCount(GetParam(), 3));
  EXPECT_EQ(kernel.active_eject_count() - before, handle.eject_count());
  kernel.RunUntil([&] { return handle.done(); });
  EXPECT_EQ(handle.output().size(), 4u);
}

TEST_P(DisciplineTest, EmptyStageListStillFlows) {
  Kernel kernel;
  PipelineOptions options;
  options.discipline = GetParam();
  ValueList output = RunPipeline(kernel, MakeInts(6), {}, options);
  EXPECT_EQ(output, MakeInts(6));
}

INSTANTIATE_TEST_SUITE_P(AllDisciplines, DisciplineTest,
                         ::testing::Values(Discipline::kReadOnly,
                                           Discipline::kWriteOnly,
                                           Discipline::kConventional),
                         [](const ::testing::TestParamInfo<Discipline>& info) {
                           std::string name(DisciplineName(info.param));
                           for (char& c : name) {
                             if (c == '-') {
                               c = '_';
                             }
                           }
                           return name;
                         });

// ------------------------------------------------- §4 invocation count claims

// Measures steady-state Transfer/Push invocations per datum by running M
// items through the pipeline and dividing out the per-stream constant
// overhead using a second run with a different M.
double MeasuredInvocationsPerDatum(Discipline discipline, size_t stages,
                                   int items_small, int items_large) {
  auto run = [&](int n) {
    Kernel kernel;
    PipelineOptions options;
    options.discipline = discipline;
    options.work_ahead = 4;
    std::vector<TransformFactory> factories;
    for (size_t i = 0; i < stages; ++i) {
      factories.push_back([] {
        return std::make_unique<LambdaTransform>(
            "id", [](const Value& v, const Transform::EmitFn& emit) {
              emit(kChanOut, v);
            });
      });
    }
    ValueList out = RunPipeline(kernel, MakeInts(n), factories, options);
    EXPECT_EQ(out.size(), static_cast<size_t>(n));
    return kernel.stats().invocations_sent.load();
  };
  uint64_t small = run(items_small);
  uint64_t large = run(items_large);
  return static_cast<double>(large - small) / (items_large - items_small);
}

TEST(InvocationCountTest, ReadOnlyNeedsNPlusOnePerDatum) {
  for (size_t n : {0u, 1u, 3u, 6u}) {
    double measured = MeasuredInvocationsPerDatum(Discipline::kReadOnly, n, 64, 192);
    EXPECT_NEAR(measured, static_cast<double>(n + 1), 0.25)
        << "stages=" << n;
  }
}

TEST(InvocationCountTest, WriteOnlyNeedsNPlusOnePerDatum) {
  for (size_t n : {0u, 1u, 3u, 6u}) {
    double measured = MeasuredInvocationsPerDatum(Discipline::kWriteOnly, n, 64, 192);
    EXPECT_NEAR(measured, static_cast<double>(n + 1), 0.25)
        << "stages=" << n;
  }
}

TEST(InvocationCountTest, ConventionalNeedsTwoNPlusTwoPerDatum) {
  for (size_t n : {0u, 1u, 3u, 6u}) {
    double measured =
        MeasuredInvocationsPerDatum(Discipline::kConventional, n, 64, 192);
    EXPECT_NEAR(measured, static_cast<double>(2 * n + 2), 0.25)
        << "stages=" << n;
  }
}

// ---------------------------------------------------------------- laziness §4

TEST(LazinessTest, NoWorkUntilSinkConnects) {
  Kernel kernel;
  VectorSource::Options options;
  options.start_on_demand = true;
  options.work_ahead = 0;
  VectorSource& source = kernel.CreateLocal<VectorSource>(MakeInts(10), options);
  kernel.Run();
  EXPECT_EQ(source.produced_count(), 0u);  // "No data flows until a sink..."

  PullSink& sink = kernel.CreateLocal<PullSink>(source.uid(),
                                                Value(std::string(kChanOut)));
  kernel.RunUntil([&] { return sink.done(); });
  EXPECT_EQ(sink.items().size(), 10u);
}

TEST(LazinessTest, WorkAheadBuffersInAdvance) {
  Kernel kernel;
  VectorSource::Options options;
  options.work_ahead = 6;
  VectorSource& source = kernel.CreateLocal<VectorSource>(MakeInts(100), options);
  kernel.Run();
  // "each Eject does a certain amount of computation in advance": exactly
  // the work-ahead allowance, then suspends pending a request.
  EXPECT_EQ(source.produced_count(), 6u);
  EXPECT_EQ(source.server().buffered(kChanOut), 6u);
}

}  // namespace
}  // namespace eden
