// ShardProfiler, ShardProfileExporter, DiagnoseParallel and FlightRecorder.
//
// The profiling layer's contract (profile.h): host-clock observation only —
// installing a profiler must never change what the simulation produces; the
// per-shard sample rings are bounded while the aggregates keep counting; a
// sequential run folds into one execute-only sample on shard 0; and the
// doctor's parallel verdict is derived from parallel windows and wall time
// alone.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "src/core/pipeline.h"
#include "src/eden/analysis.h"
#include "src/eden/json.h"
#include "src/eden/profile.h"
#include "src/eden/random.h"
#include "src/eden/trace.h"
#include "src/eden/trace_export.h"
#include "src/filters/transforms.h"

namespace eden {
namespace {

ValueList MakeLines(int n, uint64_t seed = 83) {
  Rng rng(seed);
  ValueList items;
  items.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    std::string line = rng.Chance(0.25) ? "C " : "      ";
    line += rng.Word(3, 10) + " = " + rng.Word(1, 6);
    items.push_back(Value(std::move(line)));
  }
  return items;
}

std::vector<TransformFactory> CopyChain(size_t n) {
  std::vector<TransformFactory> chain;
  for (size_t i = 0; i < n; ++i) {
    chain.push_back([] {
      return std::make_unique<LambdaTransform>(
          "copy",
          [](const Value& v, const Transform::EmitFn& emit) { emit(kChanOut, v); });
    });
  }
  return chain;
}

// Builds the sharded_test workload (every Eject on its own node, so shard
// counts > 1 really split the topology) and runs it to quiescence under the
// given profiler (which may be null).
ValueList RunProfiled(int shards, ShardProfiler* profiler,
                      uint64_t* events_out = nullptr) {
  KernelOptions kernel_options;
  kernel_options.shards = shards;
  Kernel kernel(kernel_options);
  if (profiler != nullptr) {
    kernel.set_profiler(profiler);
  }
  PipelineOptions options;
  options.discipline = Discipline::kReadOnly;
  options.distinct_nodes = true;
  PipelineHandle handle =
      BuildPipeline(kernel, MakeLines(80), CopyChain(4), options);
  kernel.RunUntil([&handle] { return handle.done(); });
  EXPECT_TRUE(kernel.Run());
  if (events_out != nullptr) {
    *events_out = kernel.stats().events_processed;
  }
  return handle.output();
}

// ---------------------------------------------------------------- the ring

TEST(ShardProfilerTest, RingBoundsSamplesButAggregatesKeepCounting) {
  ShardProfiler profiler(/*ring_capacity=*/4);
  profiler.OnRunStart(1);
  for (uint64_t w = 1; w <= 10; ++w) {
    ShardProfiler::WindowSample sample;
    sample.window = w;
    sample.events = 2;
    sample.execute_ns = 100;
    sample.drain_ns = 10;
    sample.top_barrier_ns = 5;
    sample.bottom_barrier_ns = 5;
    profiler.OnWindow(0, sample);
  }
  profiler.OnRunEnd(/*events=*/20, /*parallel=*/true);

  std::vector<ShardProfiler::ShardProfile> shards = profiler.Snapshot();
  ASSERT_EQ(shards.size(), 1u);
  const ShardProfiler::ShardProfile& shard = shards[0];
  // The ring holds the most recent 4 windows, oldest first; the 6 evicted
  // ones are counted, and the aggregates never stopped.
  ASSERT_EQ(shard.samples.size(), 4u);
  EXPECT_EQ(shard.samples_dropped, 6u);
  EXPECT_EQ(shard.samples.front().window, 7u);
  EXPECT_EQ(shard.samples.back().window, 10u);
  EXPECT_EQ(shard.windows, 10u);
  EXPECT_EQ(shard.events, 20u);
  EXPECT_EQ(shard.execute_ns, 1000u);
  EXPECT_EQ(shard.drain_ns, 100u);
  EXPECT_EQ(shard.barrier_ns, 100u);
  EXPECT_EQ(shard.stall_ns, 0u);
  EXPECT_EQ(profiler.runs(), 1u);
  EXPECT_EQ(profiler.parallel_runs(), 1u);
  EXPECT_EQ(profiler.events(), 20u);
}

TEST(ShardProfilerTest, StalledWindowsLandInStallTime) {
  ShardProfiler profiler;
  profiler.OnRunStart(2);
  ShardProfiler::WindowSample stalled;
  stalled.window = 1;
  stalled.events = 0;  // woke, found nothing below window_end
  stalled.execute_ns = 70;
  profiler.OnWindow(1, stalled);
  profiler.OnRunEnd(0, /*parallel=*/true);

  std::vector<ShardProfiler::ShardProfile> shards = profiler.Snapshot();
  ASSERT_EQ(shards.size(), 2u);
  EXPECT_EQ(shards[1].stall_ns, 70u);
  EXPECT_EQ(shards[1].execute_ns, 0u);
  EXPECT_TRUE(shards[1].samples.front().stalled());
}

// ------------------------------------------------------- kernel integration

TEST(ShardProfilerTest, ProfilesAFourShardRun) {
  ShardProfiler profiler;
  uint64_t kernel_events = 0;
  ValueList output = RunProfiled(4, &profiler, &kernel_events);
  ASSERT_EQ(output.size(), 80u);

  EXPECT_EQ(profiler.shard_count(), 4);
  EXPECT_GE(profiler.runs(), 2u);  // RunUntil + the trailing Run
  EXPECT_GE(profiler.parallel_runs(), 1u);
  EXPECT_GT(profiler.parallel_wall_ns(), 0u);
  EXPECT_EQ(profiler.events(), kernel_events);

  std::vector<ShardProfiler::ShardProfile> shards = profiler.Snapshot();
  ASSERT_EQ(shards.size(), 4u);
  uint64_t windows = 0, events = 0;
  for (const ShardProfiler::ShardProfile& shard : shards) {
    windows += shard.windows;
    events += shard.events;
    for (const ShardProfiler::WindowSample& s : shard.samples) {
      EXPECT_FALSE(s.sequential);
    }
  }
  EXPECT_GT(windows, 0u);
  // Every event the kernel executed was executed inside some shard's window.
  EXPECT_EQ(events, kernel_events);

  std::string error;
  EXPECT_TRUE(JsonValidate(ValueToJson(profiler.ToValue()), &error)) << error;
  EXPECT_NE(profiler.ToString().find("profiler:"), std::string::npos);
}

TEST(ShardProfilerTest, SequentialRunFoldsIntoOneSample) {
  ShardProfiler profiler;
  ValueList output = RunProfiled(1, &profiler);
  ASSERT_EQ(output.size(), 80u);

  EXPECT_GE(profiler.runs(), 1u);
  EXPECT_EQ(profiler.parallel_runs(), 0u);
  EXPECT_EQ(profiler.parallel_wall_ns(), 0u);
  std::vector<ShardProfiler::ShardProfile> shards = profiler.Snapshot();
  ASSERT_EQ(shards.size(), 1u);
  // The whole run is one execute-only sample on shard 0, outside the
  // parallel aggregates.
  EXPECT_EQ(shards[0].windows, 0u);
  ASSERT_FALSE(shards[0].samples.empty());
  EXPECT_TRUE(shards[0].samples.front().sequential);
  EXPECT_GT(shards[0].samples.front().events, 0u);

  // No parallel windows: the verdict declines to judge.
  EXPECT_FALSE(DiagnoseParallel(profiler).valid);
}

TEST(ShardProfilerTest, ProfilingPreservesDeterminism) {
  ShardProfiler profiler;
  uint64_t profiled_events = 0, plain_events = 0;
  ValueList profiled = RunProfiled(4, &profiler, &profiled_events);
  ValueList plain = RunProfiled(4, nullptr, &plain_events);
  EXPECT_EQ(profiled, plain);
  EXPECT_EQ(profiled_events, plain_events);
}

// ------------------------------------------------------------ the exporter

TEST(ShardProfileExporterTest, EmitsValidPerfettoJson) {
  ShardProfiler profiler;
  RunProfiled(4, &profiler);

  std::string json = ShardProfileExporter(profiler).Export();
  std::string error;
  ASSERT_TRUE(JsonValidate(json, &error)) << error;
  EXPECT_NE(json.find("traceEvents"), std::string::npos);
  // One named track per shard worker, wall-clock slices on each.
  EXPECT_NE(json.find("shard 0"), std::string::npos);
  EXPECT_NE(json.find("shard 3"), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);

  std::string path = ::testing::TempDir() + "/eden_profile_test.json";
  ASSERT_TRUE(ShardProfileExporter(profiler).WriteFile(path));
  std::FILE* file = std::fopen(path.c_str(), "rb");
  ASSERT_NE(file, nullptr);
  std::fclose(file);
  std::remove(path.c_str());
}

// ------------------------------------------------------- the parallel verdict

TEST(DiagnoseParallelTest, JudgesAFourShardRun) {
  ShardProfiler profiler;
  RunProfiled(4, &profiler);

  ParallelVerdict verdict = DiagnoseParallel(profiler);
  ASSERT_TRUE(verdict.valid);
  EXPECT_EQ(verdict.shards, 4);
  EXPECT_GT(verdict.windows, 0u);
  EXPECT_GT(verdict.speedup, 0.0);
  EXPECT_GE(verdict.serial_fraction, 0.0);
  EXPECT_LE(verdict.serial_fraction, 1.0);
  EXPECT_GE(verdict.imbalance_pct, 0.0);
  EXPECT_FALSE(verdict.top_stall.empty());
  ASSERT_EQ(verdict.per_shard.size(), 4u);
  EXPECT_NE(verdict.ToLine().find("parallel: speedup"), std::string::npos);

  std::string error;
  EXPECT_TRUE(JsonValidate(ValueToJson(verdict.ToValue()), &error)) << error;
}

TEST(DiagnoseParallelTest, DoctorAppendsTheVerdict) {
  KernelOptions kernel_options;
  kernel_options.shards = 4;
  Kernel kernel(kernel_options);
  TraceRecorder trace;
  ShardProfiler profiler;
  kernel.set_tracer(trace.Hook());
  kernel.set_profiler(&profiler);

  PipelineOptions options;
  options.discipline = Discipline::kReadOnly;
  options.distinct_nodes = true;
  PipelineHandle handle =
      BuildPipeline(kernel, MakeLines(80), CopyChain(4), options);
  handle.LabelAll(trace);
  kernel.RunUntil([&handle] { return handle.done(); });

  Diagnosis d = PipelineDoctor(trace, nullptr, &profiler).Diagnose();
  ASSERT_TRUE(d.parallel.valid);
  EXPECT_NE(d.verdict.find("parallel: speedup"), std::string::npos);
  EXPECT_NE(d.ToString().find("wall clock (per shard):"), std::string::npos);

  // Without a profiler the verdict line is unchanged.
  Diagnosis plain = PipelineDoctor(trace).Diagnose();
  EXPECT_FALSE(plain.parallel.valid);
  EXPECT_EQ(plain.verdict.find("parallel:"), std::string::npos);
}

// --------------------------------------------------------- flight recorder

TEST(FlightRecorderTest, RecordsRecentWindowsAndDumps) {
  FlightRecorder& recorder = FlightRecorder::Instance();
  recorder.Clear();
  RunProfiled(4, nullptr);  // always on: no profiler required

  std::vector<FlightRecorder::Entry> entries = recorder.Snapshot();
  ASSERT_FALSE(entries.empty());
  EXPECT_LE(entries.size(), FlightRecorder::kCapacity);
  for (const FlightRecorder::Entry& entry : entries) {
    EXPECT_GE(entry.window_end, entry.t_min);
    EXPECT_EQ(entry.shards, 4);
  }
  // Entries are newest-last with a monotone sequence.
  for (size_t i = 1; i < entries.size(); ++i) {
    EXPECT_GT(entries[i].seq, entries[i - 1].seq);
  }

  std::string path = ::testing::TempDir() + "/eden_flight_test.txt";
  std::FILE* out = std::fopen(path.c_str(), "wb");
  ASSERT_NE(out, nullptr);
  recorder.Dump(out);
  std::fclose(out);
  std::FILE* in = std::fopen(path.c_str(), "rb");
  ASSERT_NE(in, nullptr);
  std::string contents;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), in)) > 0) {
    contents.append(buf, n);
  }
  std::fclose(in);
  std::remove(path.c_str());
  EXPECT_NE(contents.find("flight recorder"), std::string::npos);

  std::string error;
  EXPECT_TRUE(JsonValidate(ValueToJson(recorder.ToValue()), &error)) << error;
  recorder.Clear();
  EXPECT_TRUE(recorder.Snapshot().empty());
}

}  // namespace
}  // namespace eden
