// Sharded-kernel tests: per-seed determinism across shard counts, real
// cross-shard traffic, repartitioning rules, and a multi-node stress run
// sized to be TSan-friendly.
//
// The contract under test (DESIGN.md "Sharded kernel"): for a fixed seed
// and topology, a run at any shard count produces byte-identical output,
// an identical trace-event stream, identical invariant-monitor state and
// identical kernel stats. Parallelism may reorder *execution*, never
// *observation*.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "src/core/pipeline.h"
#include "src/devices/devices.h"
#include "src/eden/analysis.h"
#include "src/eden/metrics.h"
#include "src/eden/monitor.h"
#include "src/eden/random.h"
#include "src/eden/trace.h"
#include "src/filters/transforms.h"

namespace eden {
namespace {

// Deterministic line workload (mirrors bench_util.h's BenchLines, without
// dragging google-benchmark into the test link).
ValueList MakeLines(int n, uint64_t seed = 83) {
  Rng rng(seed);
  ValueList items;
  items.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    std::string line = rng.Chance(0.25) ? "C " : "      ";
    line += rng.Word(3, 10) + " = " + rng.Word(1, 6);
    items.push_back(Value(std::move(line)));
  }
  return items;
}

std::vector<TransformFactory> CopyChain(size_t n) {
  std::vector<TransformFactory> chain;
  for (size_t i = 0; i < n; ++i) {
    chain.push_back([] {
      return std::make_unique<LambdaTransform>(
          "copy",
          [](const Value& v, const Transform::EmitFn& emit) { emit(kChanOut, v); });
    });
  }
  return chain;
}

// Canonical dump of a trace: every field of every event, in recorded order.
// Two runs are "the same run" iff these strings match byte for byte.
std::string SerializeTrace(const TraceRecorder& trace) {
  std::ostringstream out;
  for (const TraceEvent& e : trace.events()) {
    out << static_cast<int>(e.kind) << ' ' << e.at << ' ' << e.from.ToString()
        << ' ' << e.to.ToString() << ' ' << e.op << ' ' << e.id << ' '
        << e.parent << ' ' << e.ok << '\n';
  }
  return out.str();
}

struct FigRun {
  ValueList output;
  std::string trace;
  std::string monitor;
  std::string stats;
  Tick virtual_time = 0;
  uint64_t cross_shard_sends = 0;
  uint64_t events = 0;
};

// Runs one figure pipeline at the given shard count with every Eject on its
// own node (so shard counts > 1 really split the topology) and captures
// everything an observer could see.
FigRun RunFig(Discipline discipline, int shards, int items, size_t stages) {
  KernelOptions kernel_options;
  kernel_options.shards = shards;
  Kernel kernel(kernel_options);
  TraceRecorder trace;
  InvariantMonitor monitor;
  kernel.set_tracer(trace.Hook());
  monitor.set_trace_sink(trace.Hook());
  kernel.set_monitor(&monitor);

  PipelineOptions options;
  options.discipline = discipline;
  options.distinct_nodes = true;
  PipelineHandle handle =
      BuildPipeline(kernel, MakeLines(items), CopyChain(stages), options);
  handle.LabelAll(trace);
  handle.LabelAll(monitor);
  kernel.RunUntil([&handle] { return handle.done(); });
  // Drain trailing replies so the monitor sees the whole run.
  EXPECT_TRUE(kernel.Run());
  EXPECT_TRUE(kernel.quiescent());

  FigRun run;
  run.output = handle.output();
  run.trace = SerializeTrace(trace);
  run.monitor = monitor.ToString();
  run.stats = kernel.stats().ToValue().ToString();
  run.virtual_time = kernel.now();
  for (const ShardCounters& c : kernel.shard_counters()) {
    run.cross_shard_sends += c.cross_shard_sends;
    run.events += c.events_processed;
  }
  return run;
}

class ShardMatrix : public ::testing::TestWithParam<Discipline> {};

TEST_P(ShardMatrix, FigurePipelinesAreShardCountInvariant) {
  const Discipline discipline = GetParam();
  const int items = 120;
  const size_t stages = 4;
  FigRun base = RunFig(discipline, 1, items, stages);
  ASSERT_EQ(base.output.size(), static_cast<size_t>(items));
  for (int shards : {2, 4, 8}) {
    SCOPED_TRACE(std::string(DisciplineName(discipline)) +
                 " shards=" + std::to_string(shards));
    FigRun run = RunFig(discipline, shards, items, stages);
    EXPECT_EQ(run.output, base.output);
    EXPECT_EQ(run.trace, base.trace);
    EXPECT_EQ(run.monitor, base.monitor);
    EXPECT_EQ(run.stats, base.stats);
    EXPECT_EQ(run.virtual_time, base.virtual_time);
    EXPECT_EQ(run.events, base.events);
  }
}

INSTANTIATE_TEST_SUITE_P(Figures, ShardMatrix,
                         ::testing::Values(Discipline::kConventional,
                                           Discipline::kReadOnly,
                                           Discipline::kWriteOnly),
                         [](const ::testing::TestParamInfo<Discipline>& info) {
                           switch (info.param) {
                             case Discipline::kConventional: return "Conventional";
                             case Discipline::kReadOnly: return "ReadOnly";
                             case Discipline::kWriteOnly: return "WriteOnly";
                           }
                           return "Unknown";
                         });

// Figure 4 (read-only with report channels): a multi-source topology that
// isn't expressible through BuildPipeline. Every Eject gets its own node.
struct Fig4Run {
  ValueList output;
  ValueList reports;
  std::string trace;
  Tick virtual_time = 0;
};

Fig4Run RunFigure4(int shards, int items, int report_every) {
  KernelOptions kernel_options;
  kernel_options.shards = shards;
  Kernel kernel(kernel_options);
  TraceRecorder trace;
  kernel.set_tracer(trace.Hook());

  NodeId n1 = kernel.AddNode("fig4-source");
  NodeId n2 = kernel.AddNode("fig4-f1");
  NodeId n3 = kernel.AddNode("fig4-f2");
  NodeId n4 = kernel.AddNode("fig4-sink");
  NodeId n5 = kernel.AddNode("fig4-window");

  VectorSource::Options source_options;
  source_options.report_every = report_every;
  VectorSource& source =
      kernel.Create<VectorSource>(n1, MakeLines(items), source_options);

  ReadOnlyFilter::Options f1_options;
  f1_options.source = source.uid();
  ReadOnlyFilter& f1 = kernel.Create<ReadOnlyFilter>(
      n2,
      std::make_unique<ReportingTransform>(std::make_unique<CopyTransform>(),
                                           report_every),
      f1_options);

  ReadOnlyFilter::Options f2_options;
  f2_options.source = f1.uid();
  ReadOnlyFilter& f2 = kernel.Create<ReadOnlyFilter>(
      n3, std::make_unique<CopyTransform>(), f2_options);

  PullSink& sink =
      kernel.Create<PullSink>(n4, f2.uid(), Value(std::string(kChanOut)));
  ReportWindow& window = kernel.Create<ReportWindow>(n5);
  window.Attach(source.uid(), Value(std::string(kChanReport)), "source");
  window.Attach(f1.uid(), Value(std::string(kChanReport)), "F1");

  kernel.RunUntil([&] { return sink.done() && window.idle(); });
  EXPECT_TRUE(kernel.Run());

  Fig4Run run;
  run.output = sink.items();
  for (const std::string& line : window.lines()) {
    run.reports.push_back(Value(line));
  }
  run.trace = SerializeTrace(trace);
  run.virtual_time = kernel.now();
  return run;
}

TEST(ShardMatrix, Figure4ChannelsAreShardCountInvariant) {
  Fig4Run base = RunFigure4(/*shards=*/1, /*items=*/200, /*report_every=*/25);
  ASSERT_EQ(base.output.size(), 200u);
  ASSERT_FALSE(base.reports.empty());
  for (int shards : {2, 4, 8}) {
    SCOPED_TRACE("shards=" + std::to_string(shards));
    Fig4Run run = RunFigure4(shards, 200, 25);
    EXPECT_EQ(run.output, base.output);
    EXPECT_EQ(run.reports, base.reports);
    EXPECT_EQ(run.trace, base.trace);
    EXPECT_EQ(run.virtual_time, base.virtual_time);
  }
}

TEST(ShardedKernel, DistinctNodePipelinesGenerateCrossShardTraffic) {
  // Guards the matrix against vacuity: with every stage on its own node and
  // shards > 1, neighbouring stages land on different shards, so the run
  // must move real messages through the mailboxes.
  FigRun run = RunFig(Discipline::kReadOnly, /*shards=*/4, /*items=*/60,
                      /*stages=*/4);
  EXPECT_GT(run.cross_shard_sends, 0u);
  EXPECT_GT(run.events, 0u);
}

TEST(ShardedKernel, SetShardsRequiresQuiescence) {
  Kernel kernel;
  ASSERT_EQ(kernel.shard_count(), 1);
  // Park an event so the kernel is non-quiescent.
  kernel.ScheduleAction(1'000, [] {});
  EXPECT_FALSE(kernel.set_shards(4));
  EXPECT_EQ(kernel.shard_count(), 1);
  EXPECT_TRUE(kernel.Run());
  EXPECT_TRUE(kernel.set_shards(4));
  EXPECT_EQ(kernel.shard_count(), 4);
  // The repartitioned kernel still runs pipelines correctly.
  PipelineOptions options;
  options.discipline = Discipline::kReadOnly;
  options.distinct_nodes = true;
  ValueList output =
      RunPipeline(kernel, MakeLines(40), CopyChain(3), options);
  EXPECT_EQ(output.size(), 40u);
  EXPECT_TRUE(kernel.set_shards(1));
}

TEST(ShardedKernel, ShardCountersAreExposedPerShard) {
  KernelOptions kernel_options;
  kernel_options.shards = 4;
  Kernel kernel(kernel_options);
  PipelineOptions options;
  options.discipline = Discipline::kWriteOnly;
  options.distinct_nodes = true;
  ValueList output = RunPipeline(kernel, MakeLines(50), CopyChain(4), options);
  EXPECT_EQ(output.size(), 50u);
  std::vector<ShardCounters> counters = kernel.shard_counters();
  ASSERT_EQ(counters.size(), 4u);
  uint64_t total_events = 0;
  for (const ShardCounters& c : counters) {
    total_events += c.events_processed;
  }
  EXPECT_GT(total_events, 0u);
  // The parallel run proceeded in windows.
  EXPECT_GT(counters[0].windows, 0u);
}

TEST(ShardedKernel, DoctorSurfacesShardCounters) {
  KernelOptions kernel_options;
  kernel_options.shards = 4;
  Kernel kernel(kernel_options);
  TraceRecorder trace;
  MetricsRegistry metrics;
  kernel.set_tracer(trace.Hook());
  kernel.set_metrics(&metrics);
  PipelineOptions options;
  options.discipline = Discipline::kReadOnly;
  options.distinct_nodes = true;
  PipelineHandle handle =
      BuildPipeline(kernel, MakeLines(60), CopyChain(3), options);
  handle.LabelAll(trace);
  handle.LabelAll(metrics);
  kernel.RunUntil([&handle] { return handle.done(); });
  EXPECT_TRUE(kernel.Run());

  Diagnosis diagnosis = PipelineDoctor(trace, &metrics).Diagnose();
  ASSERT_EQ(diagnosis.shards.size(), 4u);
  EXPECT_NE(diagnosis.verdict.find("4 shards"), std::string::npos)
      << diagnosis.verdict;
  EXPECT_NE(diagnosis.verdict.find("cross-shard sends"), std::string::npos);
  std::string table = diagnosis.ToString();
  EXPECT_NE(table.find("shards:"), std::string::npos) << table;
  EXPECT_NE(table.find("mbox-hiwat"), std::string::npos);
  Value diagnosis_value = diagnosis.ToValue();
  const ValueList* shard_rows = diagnosis_value.Field("shards").AsList();
  ASSERT_NE(shard_rows, nullptr);
  EXPECT_EQ(shard_rows->size(), 4u);
}

// Deep multi-node soak: the shape bench_scale measures, shrunk so the whole
// suite (and its TSan build) stays fast. Checks conservation and that the
// parallel run matches the sequential one item for item.
TEST(ShardedStress, DeepDistinctNodePipelineMatchesSequential) {
  const int items = 300;
  const size_t depth = 12;
  PipelineOptions options;
  options.discipline = Discipline::kReadOnly;
  options.distinct_nodes = true;
  options.work_ahead = 6;

  Kernel sequential;
  ValueList expected =
      RunPipeline(sequential, MakeLines(items), CopyChain(depth), options);
  ASSERT_EQ(expected.size(), static_cast<size_t>(items));

  KernelOptions kernel_options;
  kernel_options.shards = 4;
  Kernel sharded(kernel_options);
  ValueList actual =
      RunPipeline(sharded, MakeLines(items), CopyChain(depth), options);
  EXPECT_EQ(actual, expected);
  EXPECT_TRUE(sharded.quiescent());
  EXPECT_EQ(sequential.now(), sharded.now());
}

}  // namespace
}  // namespace eden
