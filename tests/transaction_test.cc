// Transactional file system tests (§7 future work: nested transactions and
// atomic updates, reproduced per the cited Eden Transaction-Based FS).
#include <gtest/gtest.h>

#include "src/eden/kernel.h"
#include "src/fs/transaction.h"

namespace eden {
namespace {

class TxnFixture : public ::testing::Test {
 protected:
  TxnFixture() {
    TFile::RegisterType(kernel_);
    TransactionManager::RegisterType(kernel_);
    manager_ = &kernel_.CreateLocal<TransactionManager>();
    manager_uid_ = manager_->uid();
  }

  Uid Begin(std::optional<Uid> parent = std::nullopt) {
    Value args;
    if (parent) {
      args.Set("parent", Value(*parent));
    }
    InvokeResult r = kernel_.InvokeAndRun(manager_uid_, "Begin", args);
    EXPECT_TRUE(r.ok()) << r.status;
    return r.value.Field("txn").UidOr(Uid());
  }

  Status Enlist(Uid txn, Uid file) {
    return kernel_
        .InvokeAndRun(manager_uid_, "Enlist",
                      Value().Set("txn", Value(txn)).Set("file", Value(file)))
        .status;
  }

  Status Commit(Uid txn) {
    return kernel_
        .InvokeAndRun(manager_uid_, "Commit", Value().Set("txn", Value(txn)))
        .status;
  }

  Status Abort(Uid txn) {
    return kernel_
        .InvokeAndRun(manager_uid_, "Abort", Value().Set("txn", Value(txn)))
        .status;
  }

  Status Append(Uid file, Uid txn, const std::string& line) {
    return kernel_
        .InvokeAndRun(file, "TAppend",
                      Value().Set("txn", Value(txn)).Set("line", Value(line)))
        .status;
  }

  Status WriteAt(Uid file, Uid txn, int64_t index, const std::string& line) {
    return kernel_
        .InvokeAndRun(file, "TWrite", Value()
                                          .Set("txn", Value(txn))
                                          .Set("index", Value(index))
                                          .Set("line", Value(line)))
        .status;
  }

  std::optional<std::string> ReadAt(Uid file, Uid txn, int64_t index) {
    InvokeResult r = kernel_.InvokeAndRun(
        file, "TRead", Value().Set("txn", Value(txn)).Set("index", Value(index)));
    if (!r.ok()) {
      return std::nullopt;
    }
    return r.value.Field("line").StrOr("");
  }

  std::string TxnState(Uid txn) {
    InvokeResult r = kernel_.InvokeAndRun(manager_uid_, "Status",
                                          Value().Set("txn", Value(txn)));
    return r.value.Field("state").StrOr("?");
  }

  Kernel kernel_;
  // Crash destroys the manager object (it reactivates as a *new* object),
  // so invocations go through the stable uid, never through manager_.
  TransactionManager* manager_ = nullptr;
  Uid manager_uid_;
};

TEST_F(TxnFixture, CommitMakesWritesVisibleAndDurable) {
  TFile& file = kernel_.CreateLocal<TFile>("old0\nold1\n");
  Uid txn = Begin();
  ASSERT_TRUE(Enlist(txn, file.uid()).ok());
  ASSERT_TRUE(WriteAt(file.uid(), txn, 0, "new0").ok());
  ASSERT_TRUE(Append(file.uid(), txn, "new2").ok());

  // Uncommitted writes are invisible to other transactions.
  Uid other = Begin();
  ASSERT_TRUE(Enlist(other, file.uid()).ok());
  EXPECT_EQ(ReadAt(file.uid(), other, 0), "old0");

  ASSERT_TRUE(Commit(txn).ok());
  EXPECT_EQ(file.committed_lines(),
            (std::vector<std::string>{"new0", "old1", "new2"}));
  EXPECT_EQ(TxnState(txn), "committed");

  // Durable: a crash after commit restores the committed contents.
  Uid file_uid = file.uid();
  kernel_.Crash(file_uid);
  InvokeResult sz = kernel_.InvokeAndRun(
      file_uid, "TSize", Value().Set("txn", Value(Begin())));
  ASSERT_TRUE(sz.ok()) << sz.status;
  EXPECT_EQ(sz.value.Field("lines"), Value(3));
}

TEST_F(TxnFixture, AbortDiscardsWrites) {
  TFile& file = kernel_.CreateLocal<TFile>("keep\n");
  Uid txn = Begin();
  ASSERT_TRUE(Enlist(txn, file.uid()).ok());
  ASSERT_TRUE(WriteAt(file.uid(), txn, 0, "clobber").ok());
  ASSERT_TRUE(Abort(txn).ok());
  EXPECT_EQ(file.committed_lines(), (std::vector<std::string>{"keep"}));
  EXPECT_EQ(TxnState(txn), "aborted");
  EXPECT_EQ(file.open_shadow_count(), 0u);
}

TEST_F(TxnFixture, TransactionSeesItsOwnWrites) {
  TFile& file = kernel_.CreateLocal<TFile>("a\n");
  Uid txn = Begin();
  ASSERT_TRUE(Enlist(txn, file.uid()).ok());
  ASSERT_TRUE(WriteAt(file.uid(), txn, 0, "b").ok());
  EXPECT_EQ(ReadAt(file.uid(), txn, 0), "b");
}

TEST_F(TxnFixture, AtomicAcrossMultipleFiles) {
  TFile& debit = kernel_.CreateLocal<TFile>("balance 100\n");
  TFile& credit = kernel_.CreateLocal<TFile>("balance 0\n");
  Uid txn = Begin();
  ASSERT_TRUE(Enlist(txn, debit.uid()).ok());
  ASSERT_TRUE(Enlist(txn, credit.uid()).ok());
  ASSERT_TRUE(WriteAt(debit.uid(), txn, 0, "balance 60").ok());
  ASSERT_TRUE(WriteAt(credit.uid(), txn, 0, "balance 40").ok());
  ASSERT_TRUE(Commit(txn).ok());
  EXPECT_EQ(debit.committed_lines()[0], "balance 60");
  EXPECT_EQ(credit.committed_lines()[0], "balance 40");
}

TEST_F(TxnFixture, PrepareFailureAbortsWholeTransaction) {
  TFile& good = kernel_.CreateLocal<TFile>("g\n");
  TFile& doomed = kernel_.CreateLocal<TFile>("d\n");
  Uid txn = Begin();
  ASSERT_TRUE(Enlist(txn, good.uid()).ok());
  ASSERT_TRUE(Enlist(txn, doomed.uid()).ok());
  ASSERT_TRUE(WriteAt(good.uid(), txn, 0, "G").ok());
  ASSERT_TRUE(WriteAt(doomed.uid(), txn, 0, "D").ok());

  // A participant that vanished without ever checkpointing cannot prepare.
  kernel_.Crash(doomed.uid());

  EXPECT_FALSE(Commit(txn).ok());
  EXPECT_EQ(TxnState(txn), "aborted");
  EXPECT_EQ(good.committed_lines()[0], "g");  // nothing applied anywhere
}

TEST_F(TxnFixture, NestedChildCommitFoldsIntoParent) {
  TFile& file = kernel_.CreateLocal<TFile>("base\n");
  Uid parent = Begin();
  ASSERT_TRUE(Enlist(parent, file.uid()).ok());
  ASSERT_TRUE(Append(file.uid(), parent, "from-parent").ok());

  Uid child = Begin(parent);
  ASSERT_TRUE(Enlist(child, file.uid()).ok());
  // The child sees the parent's uncommitted view...
  EXPECT_EQ(ReadAt(file.uid(), child, 1), "from-parent");
  ASSERT_TRUE(Append(file.uid(), child, "from-child").ok());
  ASSERT_TRUE(Commit(child).ok());

  // ...child effects are now part of the parent, but still uncommitted.
  EXPECT_EQ(file.committed_lines(), (std::vector<std::string>{"base"}));
  EXPECT_EQ(ReadAt(file.uid(), parent, 2), "from-child");

  ASSERT_TRUE(Commit(parent).ok());
  EXPECT_EQ(file.committed_lines(),
            (std::vector<std::string>{"base", "from-parent", "from-child"}));
}

TEST_F(TxnFixture, NestedChildAbortLeavesParentIntact) {
  TFile& file = kernel_.CreateLocal<TFile>("base\n");
  Uid parent = Begin();
  ASSERT_TRUE(Enlist(parent, file.uid()).ok());
  ASSERT_TRUE(Append(file.uid(), parent, "parent-line").ok());

  Uid child = Begin(parent);
  ASSERT_TRUE(Enlist(child, file.uid()).ok());
  ASSERT_TRUE(Append(file.uid(), child, "child-line").ok());
  ASSERT_TRUE(Abort(child).ok());

  ASSERT_TRUE(Commit(parent).ok());
  EXPECT_EQ(file.committed_lines(),
            (std::vector<std::string>{"base", "parent-line"}));
}

TEST_F(TxnFixture, ParentAbortKillsLiveChildren) {
  TFile& file = kernel_.CreateLocal<TFile>("base\n");
  Uid parent = Begin();
  Uid child = Begin(parent);
  ASSERT_TRUE(Enlist(child, file.uid()).ok());
  ASSERT_TRUE(Append(file.uid(), child, "x").ok());
  ASSERT_TRUE(Abort(parent).ok());
  EXPECT_EQ(TxnState(child), "unknown");  // gone without durable outcome
  EXPECT_EQ(file.committed_lines(), (std::vector<std::string>{"base"}));
  EXPECT_EQ(file.open_shadow_count(), 0u);
}

TEST_F(TxnFixture, CommitWithLiveChildIsRefused) {
  Uid parent = Begin();
  Uid child = Begin(parent);
  EXPECT_TRUE(Commit(parent).is(StatusCode::kInvalidArgument));
  ASSERT_TRUE(Commit(child).ok());
  EXPECT_TRUE(Commit(parent).ok());
}

TEST_F(TxnFixture, CrashBetweenPrepareAndCommitRecoversViaOutcome) {
  // The classic 2PC window: participant prepared, coordinator recorded the
  // commit, participant crashed before applying. ResolveShadows consults the
  // coordinator's durable outcome and applies.
  TFile& file = kernel_.CreateLocal<TFile>("v0\n");
  Uid file_uid = file.uid();
  Uid txn = Begin();
  ASSERT_TRUE(Enlist(txn, file_uid).ok());
  ASSERT_TRUE(WriteAt(file_uid, txn, 0, "v1").ok());

  // Drive the phases by hand to stop inside the window.
  ASSERT_TRUE(kernel_.InvokeAndRun(file_uid, "Prepare",
                                   Value().Set("txn", Value(txn)))
                  .ok());
  // Coordinator records the outcome durably (simulate by doing what Commit
  // does up to its commit point): we reuse Commit, but crash the file first
  // so CommitFile cannot be delivered before the crash...
  kernel_.Crash(file_uid);  // prepared shadow survives (it was checkpointed)

  // Commit succeeds: the outcome is recorded, CommitFile reactivates the
  // file and applies the prepared shadow.
  ASSERT_TRUE(Commit(txn).ok());
  InvokeResult read = kernel_.InvokeAndRun(
      file_uid, "TRead", Value().Set("txn", Value(Begin())).Set("index", Value(0)));
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read.value.Field("line"), Value("v1"));
}

TEST_F(TxnFixture, ResolveShadowsAppliesCommittedAndDropsUnknown) {
  TFile& file = kernel_.CreateLocal<TFile>("v0\n");
  Uid file_uid = file.uid();

  // Transaction A: prepared (durably) before the crash; the coordinator
  // commits while the participant is down, so the apply happens through
  // reactivation.
  Uid committed_txn = Begin();
  ASSERT_TRUE(Enlist(committed_txn, file_uid).ok());
  ASSERT_TRUE(WriteAt(file_uid, committed_txn, 0, "committed").ok());
  ASSERT_TRUE(kernel_
                  .InvokeAndRun(file_uid, "Prepare",
                                Value().Set("txn", Value(committed_txn)))
                  .ok());

  // Transaction B: prepared but the coordinator never decided (no outcome).
  Uid orphan_txn = kernel_.uids().Next();
  ASSERT_TRUE(kernel_
                  .InvokeAndRun(file_uid, "TAppend",
                                Value()
                                    .Set("txn", Value(orphan_txn))
                                    .Set("line", Value("orphan")))
                  .ok());
  ASSERT_TRUE(kernel_
                  .InvokeAndRun(file_uid, "Prepare",
                                Value().Set("txn", Value(orphan_txn)))
                  .ok());

  kernel_.Crash(file_uid);
  ASSERT_TRUE(Commit(committed_txn).ok());  // applies via reactivation

  // Crash again before resolution of the orphan; then resolve.
  kernel_.Crash(file_uid);
  InvokeResult resolved = kernel_.InvokeAndRun(
      file_uid, "ResolveShadows", Value().Set("manager", Value(manager_uid_)));
  ASSERT_TRUE(resolved.ok()) << resolved.status;
  EXPECT_EQ(resolved.value.Field("discarded"), Value(1));  // presumed abort

  InvokeResult read = kernel_.InvokeAndRun(
      file_uid, "TRead", Value().Set("txn", Value(Begin())).Set("index", Value(0)));
  EXPECT_EQ(read.value.Field("line"), Value("committed"));
  InvokeResult size = kernel_.InvokeAndRun(file_uid, "TSize",
                                           Value().Set("txn", Value(Begin())));
  EXPECT_EQ(size.value.Field("lines"), Value(1));  // orphan append gone
}

TEST_F(TxnFixture, CoordinatorCrashForgetsActiveTransactions) {
  TFile& file = kernel_.CreateLocal<TFile>("v0\n");
  (void)kernel_.InvokeAndRun(manager_uid_, "Status", Value());  // warm up
  kernel_.Checkpoint(*manager_);

  Uid txn = Begin();
  ASSERT_TRUE(Enlist(txn, file.uid()).ok());
  kernel_.Crash(manager_uid_);  // destroys the object behind manager_

  // Reactivated coordinator: the active transaction is gone (presumed
  // abort), durable state intact.
  EXPECT_EQ(TxnState(txn), "unknown");
  EXPECT_TRUE(Commit(txn).is(StatusCode::kNotFound));
}

TEST_F(TxnFixture, ErrorsAreReported) {
  TFile& file = kernel_.CreateLocal<TFile>("a\n");
  Uid txn = Begin();
  EXPECT_TRUE(WriteAt(file.uid(), txn, 5, "x").is(StatusCode::kNotFound));
  EXPECT_TRUE(WriteAt(file.uid(), txn, -1, "x").is(StatusCode::kNotFound));
  EXPECT_TRUE(kernel_.InvokeAndRun(file.uid(), "TRead", Value())
                  .status.is(StatusCode::kInvalidArgument));
  EXPECT_TRUE(Commit(Uid(9, 9)).is(StatusCode::kNotFound));
  EXPECT_TRUE(Abort(Uid(9, 9)).is(StatusCode::kNotFound));
  // Begin with an unknown parent is refused.
  EXPECT_TRUE(kernel_
                  .InvokeAndRun(manager_uid_, "Begin",
                                Value().Set("parent", Value(Uid(9, 9))))
                  .status.is(StatusCode::kNotFound));
  // Writes after prepare are refused.
  ASSERT_TRUE(kernel_.InvokeAndRun(file.uid(), "Prepare",
                                   Value().Set("txn", Value(txn)))
                  .ok());
  EXPECT_TRUE(WriteAt(file.uid(), txn, 0, "x").is(StatusCode::kInvalidArgument));
}

TEST_F(TxnFixture, DeepNesting) {
  TFile& file = kernel_.CreateLocal<TFile>("");
  std::vector<Uid> chain;
  chain.push_back(Begin());
  for (int depth = 1; depth < 6; ++depth) {
    chain.push_back(Begin(chain.back()));
  }
  for (size_t i = 0; i < chain.size(); ++i) {
    ASSERT_TRUE(Enlist(chain[i], file.uid()).ok());
    ASSERT_TRUE(Append(file.uid(), chain[i], "depth " + std::to_string(i)).ok());
  }
  for (size_t i = chain.size(); i-- > 0;) {
    ASSERT_TRUE(Commit(chain[i]).ok()) << i;
  }
  ASSERT_EQ(file.committed_lines().size(), 6u);
  EXPECT_EQ(file.committed_lines().front(), "depth 0");
  EXPECT_EQ(file.committed_lines().back(), "depth 5");
}

}  // namespace
}  // namespace eden
