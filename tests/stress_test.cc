// Stress/soak tests: deep randomized pipelines, random crash injection, and
// large-volume runs. These are robustness tests — the assertions are about
// termination, conservation and determinism rather than specific outputs.
#include <gtest/gtest.h>

#include "src/core/pipeline.h"
#include "src/eden/random.h"
#include "src/filters/registry.h"

namespace eden {
namespace {

// Filters that neither drop nor add items (so counts are conserved).
const char* kConservative[] = {"copy", "upper", "lower", "rot13", "nl",
                               "expand", "reverse", "sort"};

std::vector<TransformFactory> RandomConservativeChain(Rng& rng, size_t depth) {
  std::vector<TransformFactory> chain;
  for (size_t i = 0; i < depth; ++i) {
    const char* name = kConservative[rng.Below(std::size(kConservative))];
    auto factory = MakeTransformByName(name, {});
    EXPECT_TRUE(factory.has_value()) << name;
    chain.push_back(*factory);
  }
  return chain;
}

ValueList RandomInput(Rng& rng, int n) {
  ValueList items;
  for (int i = 0; i < n; ++i) {
    items.push_back(Value(rng.Word(0, 30)));
  }
  return items;
}

class DeepPipelineStress : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DeepPipelineStress, DeepRandomChainsConserveItemCount) {
  Rng rng(GetParam());
  for (Discipline discipline :
       {Discipline::kReadOnly, Discipline::kWriteOnly, Discipline::kConventional}) {
    size_t depth = 1 + rng.Below(16);
    int items = 50 + static_cast<int>(rng.Below(150));
    Kernel kernel;
    PipelineOptions options;
    options.discipline = discipline;
    options.batch = 1 + static_cast<int64_t>(rng.Below(8));
    options.work_ahead = rng.Below(8);
    options.lookahead = rng.Below(4);
    ValueList output = RunPipeline(kernel, RandomInput(rng, items),
                                   RandomConservativeChain(rng, depth), options);
    EXPECT_EQ(output.size(), static_cast<size_t>(items))
        << DisciplineName(discipline) << " depth=" << depth;
    // After the trailing end-marker replies drain, nothing may remain.
    EXPECT_TRUE(kernel.Run());
    EXPECT_TRUE(kernel.quiescent());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DeepPipelineStress,
                         ::testing::Values(11u, 22u, 33u, 44u, 55u, 66u));

class CrashInjectionStress : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CrashInjectionStress, RandomMidStreamCrashNeverHangsReadOnly) {
  // Crash a random pipeline Eject once some output has flowed; the sink
  // must always terminate (cleanly if the crash was downstream of it,
  // with an error otherwise) — never hang.
  Rng rng(GetParam());
  for (int round = 0; round < 4; ++round) {
    size_t depth = 1 + rng.Below(6);
    Kernel kernel;
    PipelineOptions options;
    options.discipline = Discipline::kReadOnly;
    options.work_ahead = rng.Below(4);
    PipelineHandle handle = BuildPipeline(kernel, RandomInput(rng, 400),
                                          RandomConservativeChain(rng, depth),
                                          options);
    size_t threshold = 1 + rng.Below(50);
    kernel.RunUntil([&] { return handle.output().size() >= threshold; });
    // Crash anything but the sink itself.
    size_t victim = rng.Below(handle.ejects.size() - 1);
    kernel.Crash(handle.ejects[victim]);
    bool done = kernel.RunUntil([&] { return handle.done(); });
    EXPECT_TRUE(done) << "depth=" << depth << " victim=" << victim;
    EXPECT_TRUE(kernel.quiescent() || handle.done());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CrashInjectionStress,
                         ::testing::Values(7u, 17u, 27u, 37u));

TEST(VolumeStress, LargeStreamThroughThreeStages) {
  Kernel kernel;
  PipelineOptions options;
  options.batch = 16;
  options.work_ahead = 32;
  Rng rng(5);
  ValueList output = RunPipeline(kernel, RandomInput(rng, 20000),
                                 RandomConservativeChain(rng, 3), options);
  EXPECT_EQ(output.size(), 20000u);
}

TEST(VolumeStress, ManyParallelPipelinesShareOneKernel) {
  Kernel kernel;
  Rng rng(9);
  std::vector<PipelineHandle> handles;
  for (int p = 0; p < 20; ++p) {
    PipelineOptions options;
    options.discipline = p % 2 == 0 ? Discipline::kReadOnly : Discipline::kWriteOnly;
    handles.push_back(BuildPipeline(kernel, RandomInput(rng, 100),
                                    RandomConservativeChain(rng, 2), options));
  }
  kernel.RunUntil([&] {
    for (const PipelineHandle& handle : handles) {
      if (!handle.done()) {
        return false;
      }
    }
    return true;
  });
  for (const PipelineHandle& handle : handles) {
    EXPECT_EQ(handle.output().size(), 100u);
  }
}

TEST(VolumeStress, RepeatedRunsDoNotAccumulateState) {
  // The same kernel runs 30 consecutive pipelines; pending tables and event
  // queues must drain completely each time.
  Kernel kernel;
  Rng rng(13);
  for (int round = 0; round < 30; ++round) {
    PipelineOptions options;
    ValueList output = RunPipeline(kernel, RandomInput(rng, 50),
                                   RandomConservativeChain(rng, 2), options);
    EXPECT_EQ(output.size(), 50u);
    EXPECT_TRUE(kernel.Run());
    EXPECT_TRUE(kernel.quiescent());
  }
}

}  // namespace
}  // namespace eden
