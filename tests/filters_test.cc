// Filter library tests: every Transform, the multi-input Ejects, and the
// registry.
#include <gtest/gtest.h>

#include "src/core/endpoints.h"
#include "src/core/filter_eject.h"
#include "src/core/pipeline.h"
#include "src/eden/kernel.h"
#include "src/filters/multi_input.h"
#include "src/filters/registry.h"
#include "src/filters/transforms.h"

namespace eden {
namespace {

ValueList Lines(std::initializer_list<const char*> lines) {
  ValueList items;
  for (const char* line : lines) {
    items.push_back(Value(line));
  }
  return items;
}

std::vector<std::string> AsStrings(const ValueList& items) {
  std::vector<std::string> out;
  for (const Value& item : items) {
    out.push_back(item.StrOr(item.ToString()));
  }
  return out;
}

// Runs `input` through a single transform (read-only discipline).
ValueList RunOne(std::unique_ptr<Transform> transform, ValueList input) {
  Kernel kernel;
  VectorSource& source = kernel.CreateLocal<VectorSource>(std::move(input));
  ReadOnlyFilter::Options options;
  options.source = source.uid();
  ReadOnlyFilter& filter =
      kernel.CreateLocal<ReadOnlyFilter>(std::move(transform), options);
  PullSink& sink = kernel.CreateLocal<PullSink>(filter.uid(),
                                                Value(std::string(kChanOut)));
  kernel.RunUntil([&] { return sink.done(); });
  EXPECT_TRUE(sink.done());
  return sink.items();
}

TEST(TransformTest, StripPrefixDropsFortranComments) {
  // The paper's §3 example: strip comment lines from a Fortran program.
  ValueList out = RunOne(std::make_unique<StripPrefixTransform>("C"),
                         Lines({"C this is a comment", "      X = 1",
                                "C another", "      CALL F(X)"}));
  EXPECT_EQ(AsStrings(out),
            (std::vector<std::string>{"      X = 1", "      CALL F(X)"}));
}

TEST(TransformTest, GrepKeepsMatching) {
  ValueList out = RunOne(std::make_unique<GrepTransform>("ab"),
                         Lines({"abc", "xyz", "drab"}));
  EXPECT_EQ(AsStrings(out), (std::vector<std::string>{"abc", "drab"}));
}

TEST(TransformTest, GrepInvertDropsMatching) {
  ValueList out = RunOne(std::make_unique<GrepTransform>("ab", true),
                         Lines({"abc", "xyz", "drab"}));
  EXPECT_EQ(AsStrings(out), (std::vector<std::string>{"xyz"}));
}

TEST(TransformTest, TranslateUpperLowerRot13) {
  EXPECT_EQ(AsStrings(RunOne(std::make_unique<TranslateTransform>(
                                 TranslateTransform::Mode::kUpper),
                             Lines({"aBc!"}))),
            (std::vector<std::string>{"ABC!"}));
  EXPECT_EQ(AsStrings(RunOne(std::make_unique<TranslateTransform>(
                                 TranslateTransform::Mode::kLower),
                             Lines({"aBc!"}))),
            (std::vector<std::string>{"abc!"}));
  // rot13 twice is identity.
  ValueList once = RunOne(std::make_unique<TranslateTransform>(
                              TranslateTransform::Mode::kRot13),
                          Lines({"Hello, World"}));
  ValueList twice = RunOne(std::make_unique<TranslateTransform>(
                               TranslateTransform::Mode::kRot13),
                           once);
  EXPECT_EQ(AsStrings(twice), (std::vector<std::string>{"Hello, World"}));
}

TEST(TransformTest, ReplaceAllOccurrences) {
  ValueList out = RunOne(std::make_unique<ReplaceTransform>("aa", "b"),
                         Lines({"aaaa x aa"}));
  EXPECT_EQ(AsStrings(out), (std::vector<std::string>{"bb x b"}));
}

TEST(TransformTest, HeadTakesPrefix) {
  ValueList out =
      RunOne(std::make_unique<HeadTransform>(2), Lines({"1", "2", "3", "4"}));
  EXPECT_EQ(AsStrings(out), (std::vector<std::string>{"1", "2"}));
}

TEST(TransformTest, TailTakesSuffix) {
  ValueList out =
      RunOne(std::make_unique<TailTransform>(2), Lines({"1", "2", "3", "4"}));
  EXPECT_EQ(AsStrings(out), (std::vector<std::string>{"3", "4"}));
}

TEST(TransformTest, TailShorterThanLimit) {
  ValueList out = RunOne(std::make_unique<TailTransform>(5), Lines({"1", "2"}));
  EXPECT_EQ(AsStrings(out), (std::vector<std::string>{"1", "2"}));
}

TEST(TransformTest, LineNumber) {
  ValueList out = RunOne(std::make_unique<LineNumberTransform>(), Lines({"a", "b"}));
  EXPECT_EQ(AsStrings(out), (std::vector<std::string>{"1\ta", "2\tb"}));
}

TEST(TransformTest, WordCount) {
  ValueList out = RunOne(std::make_unique<WordCountTransform>(),
                         Lines({"one two", " three", ""}));
  // 3 lines, 3 words, chars = 8+7+1 = 16 (incl. newlines).
  EXPECT_EQ(AsStrings(out), (std::vector<std::string>{"3 3 16"}));
}

TEST(TransformTest, PaginateInsertsHeaders) {
  ValueList out = RunOne(std::make_unique<PaginateTransform>(2, "t"),
                         Lines({"a", "b", "c"}));
  EXPECT_EQ(AsStrings(out),
            (std::vector<std::string>{"---- t page 1 ----", "a", "b",
                                      "---- t page 2 ----", "c",
                                      "---- end (2 pages) ----"}));
}

TEST(TransformTest, PaginateEmptyStreamEmitsNothing) {
  ValueList out = RunOne(std::make_unique<PaginateTransform>(2, "t"), {});
  EXPECT_TRUE(out.empty());
}

TEST(TransformTest, ExpandTabs) {
  ValueList out = RunOne(std::make_unique<ExpandTabsTransform>(4),
                         Lines({"a\tb", "\t."}));
  EXPECT_EQ(AsStrings(out), (std::vector<std::string>{"a   b", "    ."}));
}

TEST(TransformTest, DedupDropsAdjacentDuplicates) {
  ValueList out = RunOne(std::make_unique<DedupTransform>(),
                         Lines({"a", "a", "b", "a", "a", "a"}));
  EXPECT_EQ(AsStrings(out), (std::vector<std::string>{"a", "b", "a"}));
}

TEST(TransformTest, SortIsStableAndOrdersIntsNumerically) {
  ValueList ints;
  for (int64_t v : {5, 3, 11, 3, 1}) {
    ints.push_back(Value(v));
  }
  ValueList out = RunOne(std::make_unique<SortTransform>(), ints);
  ValueList expected;
  for (int64_t v : {1, 3, 3, 5, 11}) {
    expected.push_back(Value(v));
  }
  EXPECT_EQ(out, expected);
}

TEST(TransformTest, Reverse) {
  ValueList out = RunOne(std::make_unique<ReverseTransform>(), Lines({"a", "b", "c"}));
  EXPECT_EQ(AsStrings(out), (std::vector<std::string>{"c", "b", "a"}));
}

TEST(TransformTest, PrettyPrintIndentsByDepth) {
  ValueList out = RunOne(std::make_unique<PrettyPrintTransform>(2),
                         Lines({"f() {", "x = 1;", "if (y) {", "z;", "}", "}"}));
  EXPECT_EQ(AsStrings(out),
            (std::vector<std::string>{"f() {", "  x = 1;", "  if (y) {",
                                      "    z;", "  }", "}"}));
}

TEST(TransformTest, SpellEmitsUnknownWords) {
  ValueList out = RunOne(
      std::make_unique<SpellTransform>(std::set<std::string>{"the", "cat", "sat"}),
      Lines({"The cat zat", "on the mat."}));
  EXPECT_EQ(AsStrings(out), (std::vector<std::string>{"zat", "on", "mat"}));
}

TEST(TransformTest, ReportingWrapperEmitsOnReportChannel) {
  Kernel kernel;
  VectorSource& source = kernel.CreateLocal<VectorSource>(Lines({"a", "b", "c", "d"}));
  ReadOnlyFilter::Options options;
  options.source = source.uid();
  auto transform =
      std::make_unique<ReportingTransform>(std::make_unique<CopyTransform>(), 2);
  ReadOnlyFilter& filter =
      kernel.CreateLocal<ReadOnlyFilter>(std::move(transform), options);
  PullSink& out = kernel.CreateLocal<PullSink>(filter.uid(),
                                               Value(std::string(kChanOut)));
  PullSink& reports = kernel.CreateLocal<PullSink>(filter.uid(),
                                                   Value(std::string(kChanReport)));
  kernel.RunUntil([&] { return out.done() && reports.done(); });
  EXPECT_EQ(out.items().size(), 4u);
  EXPECT_EQ(AsStrings(reports.items()),
            (std::vector<std::string>{"copy: 2 items", "copy: 4 items",
                                      "copy: done after 4 items"}));
}


TEST(TransformTest, SplitRoutesDisjointStreamsToChannels) {
  Kernel kernel;
  VectorSource& source = kernel.CreateLocal<VectorSource>(
      Lines({"match a", "nope", "also match", "zzz"}));
  ReadOnlyFilter::Options options;
  options.source = source.uid();
  ReadOnlyFilter& split = kernel.CreateLocal<ReadOnlyFilter>(
      std::make_unique<SplitTransform>("match"), options);
  PullSink& matched = kernel.CreateLocal<PullSink>(split.uid(),
                                                   Value(std::string(kChanOut)));
  PullSink& rest = kernel.CreateLocal<PullSink>(split.uid(), Value("rest"));
  kernel.RunUntil([&] { return matched.done() && rest.done(); });
  EXPECT_EQ(AsStrings(matched.items()),
            (std::vector<std::string>{"match a", "also match"}));
  EXPECT_EQ(AsStrings(rest.items()), (std::vector<std::string>{"nope", "zzz"}));
}

// ------------------------------------------------------------- multi input

TEST(SedTest, ParseCommands) {
  SedCommand cmd;
  EXPECT_TRUE(ParseSedCommand("s/a/b/", cmd));
  EXPECT_EQ(cmd.verb, 's');
  EXPECT_EQ(cmd.a, "a");
  EXPECT_EQ(cmd.b, "b");
  EXPECT_TRUE(ParseSedCommand("d|pat|", cmd));
  EXPECT_EQ(cmd.verb, 'd');
  EXPECT_EQ(cmd.a, "pat");
  EXPECT_FALSE(ParseSedCommand("", cmd));
  EXPECT_FALSE(ParseSedCommand("x/a/", cmd));
  EXPECT_FALSE(ParseSedCommand("s/a", cmd));
}

TEST(SedTest, CommandInputParameterisesTextStream) {
  Kernel kernel;
  VectorSource& commands =
      kernel.CreateLocal<VectorSource>(Lines({"s/old/new/", "d/drop/"}));
  VectorSource& text = kernel.CreateLocal<VectorSource>(
      Lines({"old line", "drop me", "keep old old"}));
  SedLite& sed = kernel.CreateLocal<SedLite>(StreamRef{commands.uid()},
                                             StreamRef{text.uid()});
  PullSink& sink = kernel.CreateLocal<PullSink>(sed.uid(),
                                                Value(std::string(kChanOut)));
  kernel.RunUntil([&] { return sink.done(); });
  EXPECT_EQ(AsStrings(sink.items()),
            (std::vector<std::string>{"new line", "keep new new"}));
}

TEST(SedTest, QuitLimitsOutput) {
  Kernel kernel;
  VectorSource& commands = kernel.CreateLocal<VectorSource>(Lines({"q/2/"}));
  VectorSource& text =
      kernel.CreateLocal<VectorSource>(Lines({"1", "2", "3", "4"}));
  SedLite& sed = kernel.CreateLocal<SedLite>(StreamRef{commands.uid()},
                                             StreamRef{text.uid()});
  PullSink& sink = kernel.CreateLocal<PullSink>(sed.uid(),
                                                Value(std::string(kChanOut)));
  kernel.RunUntil([&] { return sink.done(); });
  EXPECT_EQ(AsStrings(sink.items()), (std::vector<std::string>{"1", "2"}));
}

TEST(CmpTest, ReportsDifferencesAndSummary) {
  Kernel kernel;
  VectorSource& left = kernel.CreateLocal<VectorSource>(Lines({"a", "b", "c"}));
  VectorSource& right = kernel.CreateLocal<VectorSource>(Lines({"a", "x", "c", "d"}));
  CmpEject& cmp = kernel.CreateLocal<CmpEject>(StreamRef{left.uid()},
                                               StreamRef{right.uid()});
  PullSink& sink = kernel.CreateLocal<PullSink>(cmp.uid(),
                                                Value(std::string(kChanOut)));
  kernel.RunUntil([&] { return sink.done(); });
  EXPECT_EQ(AsStrings(sink.items()),
            (std::vector<std::string>{"2: b | x", "4: <eof> | d",
                                      "cmp: 2 differing records"}));
  EXPECT_EQ(cmp.differences(), 2);
}

TEST(CmpTest, IdenticalStreams) {
  Kernel kernel;
  VectorSource& left = kernel.CreateLocal<VectorSource>(Lines({"a", "b"}));
  VectorSource& right = kernel.CreateLocal<VectorSource>(Lines({"a", "b"}));
  CmpEject& cmp = kernel.CreateLocal<CmpEject>(StreamRef{left.uid()},
                                               StreamRef{right.uid()});
  PullSink& sink = kernel.CreateLocal<PullSink>(cmp.uid(),
                                                Value(std::string(kChanOut)));
  kernel.RunUntil([&] { return sink.done(); });
  EXPECT_EQ(AsStrings(sink.items()),
            (std::vector<std::string>{"cmp: 0 differing records"}));
}

TEST(MergeTest, ArbitraryFanIn) {
  // §5: the read-only scheme generalises "to allow an arbitrary number of
  // inputs" — here three.
  Kernel kernel;
  VectorSource& a = kernel.CreateLocal<VectorSource>(Lines({"a1", "a2"}));
  VectorSource& b = kernel.CreateLocal<VectorSource>(Lines({"b1"}));
  VectorSource& c = kernel.CreateLocal<VectorSource>(Lines({"c1", "c2", "c3"}));
  MergeEject& merge = kernel.CreateLocal<MergeEject>(
      std::vector<StreamRef>{{a.uid()}, {b.uid()}, {c.uid()}});
  PullSink& sink = kernel.CreateLocal<PullSink>(merge.uid(),
                                                Value(std::string(kChanOut)));
  kernel.RunUntil([&] { return sink.done(); });
  EXPECT_EQ(AsStrings(sink.items()),
            (std::vector<std::string>{"a1", "b1", "c1", "a2", "c2", "c3"}));
}

// --------------------------------------------------------------- registry

TEST(RegistryTest, KnownNamesProduceWorkingFactories) {
  for (const std::string& name : RegisteredFilterNames()) {
    std::vector<std::string> args;
    if (name == "strip" || name == "grep" || name == "grep-v" ||
        name == "split") {
      args = {"x"};
    } else if (name == "replace") {
      args = {"a", "b"};
    } else if (name == "head" || name == "tail" || name == "paginate") {
      args = {"3"};
    } else if (name == "report") {
      args = {"2", "copy"};
    }
    auto factory = MakeTransformByName(name, args);
    ASSERT_TRUE(factory.has_value()) << name;
    ASSERT_NE((*factory)(), nullptr) << name;
  }
}

TEST(RegistryTest, RejectsUnknownAndMalformed) {
  EXPECT_FALSE(MakeTransformByName("frobnicate", {}).has_value());
  EXPECT_FALSE(MakeTransformByName("head", {"x"}).has_value());
  EXPECT_FALSE(MakeTransformByName("head", {}).has_value());
  EXPECT_FALSE(MakeTransformByName("paginate", {"0"}).has_value());
  EXPECT_FALSE(MakeTransformByName("report", {"2", "frobnicate"}).has_value());
  EXPECT_FALSE(MakeTransformByName("copy", {"extra"}).has_value());
}

}  // namespace
}  // namespace eden
