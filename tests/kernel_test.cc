// Kernel substrate tests: invocation, coroutines, activation, crash,
// checkpoint, determinism.
#include "src/eden/kernel.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/eden/codec.h"
#include "src/eden/eject.h"
#include "src/eden/sync.h"

namespace eden {
namespace {

// An Eject that replies to "Echo" with its argument and to "Add" with the
// sum of two integers.
class EchoEject : public Eject {
 public:
  explicit EchoEject(Kernel& kernel) : Eject(kernel, "Echo") {
    Register("Echo", [](InvocationContext ctx) {
      Value v = ctx.args();
      ctx.Reply(std::move(v));
    });
    Register("Add", [](InvocationContext ctx) {
      auto a = ctx.Arg("a").AsInt();
      auto b = ctx.Arg("b").AsInt();
      if (!a || !b) {
        ctx.ReplyError(StatusCode::kInvalidArgument, "need ints a, b");
        return;
      }
      ctx.Reply(Value(*a + *b));
    });
    Register("Count", [this](InvocationContext ctx) { ctx.Reply(Value(++count_)); });
  }

 private:
  int64_t count_ = 0;
};

// An Eject that forwards an Echo through another Eject (tests coroutine
// invocation chains).
class RelayEject : public Eject {
 public:
  RelayEject(Kernel& kernel, Uid next) : Eject(kernel, "Relay"), next_(next) {
    RegisterTask("Relay", [this](InvocationContext ctx) { return DoRelay(std::move(ctx)); });
  }

 private:
  Task<void> DoRelay(InvocationContext ctx) {
    InvokeResult r = co_await Invoke(next_, "Echo", ctx.args());
    ctx.ReplyStatus(r.status, std::move(r.value));
  }

  Uid next_;
};

// An Eject with a counter that checkpoints; used for activation tests.
class CounterEject : public Eject {
 public:
  static constexpr const char* kType = "Counter";

  explicit CounterEject(Kernel& kernel) : Eject(kernel, kType) {
    Register("Increment", [this](InvocationContext ctx) {
      ++count_;
      ctx.Reply(Value(count_));
    });
    Register("Get", [this](InvocationContext ctx) { ctx.Reply(Value(count_)); });
    Register("Checkpoint", [this](InvocationContext ctx) {
      Checkpoint();
      ctx.Reply();
    });
  }

  Value SaveState() override { return Value().Set("count", Value(count_)); }
  void RestoreState(const Value& state) override {
    count_ = state.Field("count").IntOr(0);
  }

 private:
  int64_t count_ = 0;
};

// A source that parks Read invocations until data is produced: the minimal
// passive-output Eject.
class ParkingSource : public Eject {
 public:
  explicit ParkingSource(Kernel& kernel) : Eject(kernel, "ParkingSource") {
    Register("Read", [this](InvocationContext ctx) {
      if (!items_.empty()) {
        Value v = std::move(items_.front());
        items_.erase(items_.begin());
        ctx.Reply(std::move(v));
        return;
      }
      parked_.push_back(ctx.TakeReply());
    });
  }

  void Produce(Value v) {
    if (!parked_.empty()) {
      ReplyHandle h = std::move(parked_.front());
      parked_.erase(parked_.begin());
      h.Reply(std::move(v));
      return;
    }
    items_.push_back(std::move(v));
  }

  size_t parked_count() const { return parked_.size(); }

 private:
  std::vector<Value> items_;
  std::vector<ReplyHandle> parked_;
};

TEST(KernelTest, EchoRoundTrip) {
  Kernel kernel;
  EchoEject& echo = kernel.CreateLocal<EchoEject>();
  InvokeResult r = kernel.InvokeAndRun(echo.uid(), "Echo", Value("hello"));
  ASSERT_TRUE(r.ok()) << r.status;
  EXPECT_EQ(r.value, Value("hello"));
}

TEST(KernelTest, AddOperation) {
  Kernel kernel;
  EchoEject& echo = kernel.CreateLocal<EchoEject>();
  Value args = Value().Set("a", Value(2)).Set("b", Value(40));
  InvokeResult r = kernel.InvokeAndRun(echo.uid(), "Add", args);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value, Value(42));
}

TEST(KernelTest, UnknownOperationIsReported) {
  Kernel kernel;
  EchoEject& echo = kernel.CreateLocal<EchoEject>();
  InvokeResult r = kernel.InvokeAndRun(echo.uid(), "Bogus", Value());
  EXPECT_TRUE(r.status.is(StatusCode::kNoSuchOperation));
}

TEST(KernelTest, UnknownTargetIsReported) {
  Kernel kernel;
  InvokeResult r = kernel.InvokeAndRun(Uid(1, 2), "Echo", Value());
  EXPECT_TRUE(r.status.is(StatusCode::kNoSuchEject));
}

TEST(KernelTest, InvalidArgumentReported) {
  Kernel kernel;
  EchoEject& echo = kernel.CreateLocal<EchoEject>();
  InvokeResult r = kernel.InvokeAndRun(echo.uid(), "Add", Value("nope"));
  EXPECT_TRUE(r.status.is(StatusCode::kInvalidArgument));
}

TEST(KernelTest, RelayChainsInvocationsThroughCoroutine) {
  Kernel kernel;
  EchoEject& echo = kernel.CreateLocal<EchoEject>();
  RelayEject& relay = kernel.CreateLocal<RelayEject>(echo.uid());
  InvokeResult r = kernel.InvokeAndRun(relay.uid(), "Relay", Value("via"));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value, Value("via"));
}

TEST(KernelTest, StatsCountMessages) {
  Kernel kernel;
  EchoEject& echo = kernel.CreateLocal<EchoEject>();
  Stats before = kernel.stats();
  (void)kernel.InvokeAndRun(echo.uid(), "Echo", Value("x"));
  Stats d = kernel.stats() - before;
  EXPECT_EQ(d.invocations_sent, 1u);
  EXPECT_EQ(d.replies_sent, 1u);
  EXPECT_GT(d.invocation_bytes, 0u);
}

TEST(KernelTest, VirtualTimeAdvancesByCostModel) {
  KernelOptions options;
  options.costs.invocation_send = 100;
  options.costs.dispatch = 20;
  options.costs.per_byte_num = 0;
  Kernel kernel(options);
  EchoEject& echo = kernel.CreateLocal<EchoEject>();
  EXPECT_EQ(kernel.now(), 0);
  (void)kernel.InvokeAndRun(echo.uid(), "Echo", Value("x"));
  // one invocation (send 100 + dispatch 20) + one reply (send 100): >= 220.
  EXPECT_GE(kernel.now(), 220);
}

TEST(KernelTest, CrossNodeMessagesCostMore) {
  KernelOptions options;
  options.costs.cross_node_latency = 1000;
  Kernel local_kernel(options);
  EchoEject& local_echo = local_kernel.CreateLocal<EchoEject>();
  (void)local_kernel.InvokeAndRun(local_echo.uid(), "Echo", Value("x"));
  Tick local_time = local_kernel.now();

  Kernel remote_kernel(options);
  NodeId far = remote_kernel.AddNode("far");
  EchoEject& remote_echo = remote_kernel.Create<EchoEject>(far);
  RelayEject& relay = remote_kernel.CreateLocal<RelayEject>(remote_echo.uid());
  (void)remote_kernel.InvokeAndRun(relay.uid(), "Relay", Value("x"));
  EXPECT_EQ(remote_kernel.stats().cross_node_messages, 1u);
  EXPECT_GT(remote_kernel.now(), local_time);
}

TEST(KernelTest, ParkedReadsAreServedInOrder) {
  Kernel kernel;
  ParkingSource& source = kernel.CreateLocal<ParkingSource>();

  std::vector<int64_t> got;
  for (int i = 0; i < 3; ++i) {
    kernel.ExternalInvoke(source.uid(), "Read", Value(), [&got](InvokeResult r) {
      ASSERT_TRUE(r.ok());
      got.push_back(r.value.IntOr(-1));
    });
  }
  kernel.Run();
  EXPECT_EQ(source.parked_count(), 3u);  // the partial vacuum of §4
  EXPECT_TRUE(got.empty());

  source.Produce(Value(10));
  source.Produce(Value(11));
  source.Produce(Value(12));
  kernel.Run();
  EXPECT_EQ(got, (std::vector<int64_t>{10, 11, 12}));
}

TEST(KernelTest, DroppedReplyHandleAnswersCancelled) {
  class Dropper : public Eject {
   public:
    explicit Dropper(Kernel& kernel) : Eject(kernel, "Dropper") {
      Register("Drop", [](InvocationContext ctx) {
        ReplyHandle h = ctx.TakeReply();
        (void)h;  // destroyed without replying
      });
    }
  };
  Kernel kernel;
  Dropper& dropper = kernel.CreateLocal<Dropper>();
  InvokeResult r = kernel.InvokeAndRun(dropper.uid(), "Drop", Value());
  EXPECT_TRUE(r.status.is(StatusCode::kCancelled));
}

TEST(KernelTest, CheckpointAndCrashReactivates) {
  Kernel kernel;
  kernel.types().Register(CounterEject::kType,
                          [](Kernel& k) { return std::make_unique<CounterEject>(k); });
  CounterEject& counter = kernel.CreateLocal<CounterEject>();
  Uid uid = counter.uid();

  (void)kernel.InvokeAndRun(uid, "Increment");
  (void)kernel.InvokeAndRun(uid, "Increment");
  (void)kernel.InvokeAndRun(uid, "Checkpoint");
  (void)kernel.InvokeAndRun(uid, "Increment");  // not checkpointed

  kernel.Crash(uid);
  EXPECT_FALSE(kernel.IsActive(uid));

  // Next invocation reactivates from the passive representation: count == 2.
  InvokeResult r = kernel.InvokeAndRun(uid, "Get");
  ASSERT_TRUE(r.ok()) << r.status;
  EXPECT_EQ(r.value, Value(2));
  EXPECT_TRUE(kernel.IsActive(uid));
  EXPECT_EQ(kernel.stats().activations, 1u);
}

TEST(KernelTest, CrashWithoutCheckpointDisappears) {
  Kernel kernel;
  kernel.types().Register(CounterEject::kType,
                          [](Kernel& k) { return std::make_unique<CounterEject>(k); });
  CounterEject& counter = kernel.CreateLocal<CounterEject>();
  Uid uid = counter.uid();
  kernel.Crash(uid);
  InvokeResult r = kernel.InvokeAndRun(uid, "Get");
  EXPECT_TRUE(r.status.is(StatusCode::kNoSuchEject));
}

TEST(KernelTest, DeactivateWithParkedRequestFailsCaller) {
  Kernel kernel;
  ParkingSource& source = kernel.CreateLocal<ParkingSource>();
  Uid uid = source.uid();
  InvokeResult got;
  bool done = false;
  kernel.ExternalInvoke(uid, "Read", Value(), [&](InvokeResult r) {
    got = std::move(r);
    done = true;
  });
  kernel.Run();
  ASSERT_FALSE(done);  // parked
  kernel.Deactivate(uid);
  kernel.Run();
  ASSERT_TRUE(done);
  EXPECT_TRUE(got.status.is(StatusCode::kUnavailable));
}

TEST(KernelTest, CrashDestroysInternalProcesses) {
  class Looper : public Eject {
   public:
    explicit Looper(Kernel& kernel) : Eject(kernel, "Looper"), wake_(*this) {}
    void OnStart() override {
      Spawn(Loop());
    }
    Task<void> Loop() {
      for (;;) {
        co_await wake_.Wait();
      }
    }
    CondVar wake_;
  };
  Kernel kernel;
  Looper& looper = kernel.CreateLocal<Looper>();
  Uid uid = looper.uid();
  kernel.Run();
  EXPECT_EQ(looper.live_process_count(), 1u);
  kernel.Crash(uid);
  kernel.Run();  // no dangling resumptions may fire
  EXPECT_FALSE(kernel.IsActive(uid));
}

TEST(KernelTest, DeterministicRuns) {
  auto run_once = []() {
    Kernel kernel;
    EchoEject& echo = kernel.CreateLocal<EchoEject>();
    RelayEject& relay = kernel.CreateLocal<RelayEject>(echo.uid());
    for (int i = 0; i < 10; ++i) {
      (void)kernel.InvokeAndRun(relay.uid(), "Relay", Value(int64_t{i}));
    }
    return std::pair<Tick, uint64_t>(kernel.now(), kernel.stats().events_processed);
  };
  auto a = run_once();
  auto b = run_once();
  EXPECT_EQ(a, b);
}

TEST(KernelTest, RunForStopsAtDeadline) {
  Kernel kernel;
  EchoEject& echo = kernel.CreateLocal<EchoEject>();
  kernel.ExternalInvoke(echo.uid(), "Echo", Value("x"), [](InvokeResult) {});
  kernel.RunFor(1);  // far less than the invocation cost
  EXPECT_EQ(kernel.now(), 1);
  EXPECT_FALSE(kernel.quiescent());
  kernel.Run();
  EXPECT_TRUE(kernel.quiescent());
}

TEST(KernelTest, SequentialCountsAreIsolatedPerEject) {
  Kernel kernel;
  EchoEject& a = kernel.CreateLocal<EchoEject>();
  EchoEject& b = kernel.CreateLocal<EchoEject>();
  (void)kernel.InvokeAndRun(a.uid(), "Count");
  (void)kernel.InvokeAndRun(a.uid(), "Count");
  InvokeResult ra = kernel.InvokeAndRun(a.uid(), "Count");
  InvokeResult rb = kernel.InvokeAndRun(b.uid(), "Count");
  EXPECT_EQ(ra.value, Value(3));
  EXPECT_EQ(rb.value, Value(1));
}

TEST(KernelTest, CrashNodeKillsOnlyThatNode) {
  Kernel kernel;
  NodeId n1 = kernel.AddNode("n1");
  EchoEject& on0 = kernel.CreateLocal<EchoEject>();
  // CrashNode destroys the Eject object itself; keep only the uid.
  Uid on1 = kernel.Create<EchoEject>(n1).uid();
  kernel.CrashNode(n1);
  EXPECT_TRUE(kernel.IsActive(on0.uid()));
  EXPECT_FALSE(kernel.IsActive(on1));
}

TEST(SyncTest, BoundedQueueBlocksAtCapacity) {
  class Producer : public Eject {
   public:
    explicit Producer(Kernel& kernel) : Eject(kernel, "Producer"), queue_(*this, 2) {}
    void OnStart() override {
      Spawn(Produce());
    }
    Task<void> Produce() {
      for (int i = 0; i < 5; ++i) {
        co_await queue_.Push(i);
        pushed_++;
      }
      queue_.Close();
    }
    Task<void> Consume(std::vector<int>* out) {
      for (;;) {
        std::optional<int> v = co_await queue_.Pop();
        if (!v) {
          break;
        }
        out->push_back(*v);
      }
    }
    BoundedQueue<int> queue_;
    int pushed_ = 0;
  };

  Kernel kernel;
  Producer& producer = kernel.CreateLocal<Producer>();
  kernel.Run();
  // Producer fills capacity (2) then blocks; no consumer yet.
  EXPECT_EQ(producer.pushed_, 2);

  std::vector<int> got;
  producer.Spawn(producer.Consume(&got));
  kernel.Run();
  EXPECT_EQ(got, (std::vector<int>{0, 1, 2, 3, 4}));
  EXPECT_EQ(producer.pushed_, 5);
}

TEST(SyncTest, GateReleasesAllWaiters) {
  class Gated : public Eject {
   public:
    explicit Gated(Kernel& kernel) : Eject(kernel, "Gated"), gate_(*this) {}
    Task<void> WaitThenCount() {
      co_await gate_.Wait();
      ++released_;
    }
    Gate gate_;
    int released_ = 0;
  };
  Kernel kernel;
  Gated& gated = kernel.CreateLocal<Gated>();
  for (int i = 0; i < 3; ++i) {
    gated.Spawn(gated.WaitThenCount());
  }
  kernel.Run();
  EXPECT_EQ(gated.released_, 0);
  gated.gate_.Open();
  kernel.Run();
  EXPECT_EQ(gated.released_, 3);
}

}  // namespace
}  // namespace eden
