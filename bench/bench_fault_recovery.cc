// Experiment F5 — recovery under injected faults.
//
// Each benchmark runs the same two-stage pipeline (a stateful running-sum
// filter, then a copy) twice per discipline: once fault-free, once with 1%
// message loss in each direction plus one scheduled crash of the stateful
// filter mid-run. Both runs use recovery mode; the baseline additionally
// proves that recovery machinery is pure overhead when nothing fails
// (timeouts == retries == redeliveries_dropped == recoveries == 0).
//
// The headline counter is `output_ok`: 1 iff the faulty run's output is
// byte-identical to the fault-free run's. Virtual-time and retry counters
// quantify what the recovery cost.
#include "bench/bench_util.h"

#include "src/eden/fault.h"

namespace eden {
namespace {

// Stateful on purpose: crash recovery must restore the accumulated sum from
// the checkpoint, not just the stream positions.
class RunningSum : public Transform {
 public:
  void OnItem(const Value& item, const EmitFn& emit) override {
    sum_ += item.IntOr(0);
    emit(kChanOut, Value(sum_));
  }
  Value SaveState() const override {
    Value state;
    state.Set("sum", Value(sum_));
    return state;
  }
  void RestoreState(const Value& state) override {
    sum_ = state.Field("sum").IntOr(0);
  }
  std::string name() const override { return "running-sum"; }

 private:
  int64_t sum_ = 0;
};

std::vector<TransformFactory> SumChain() {
  std::vector<TransformFactory> chain;
  chain.push_back(MakeTransformFactory<RunningSum>());
  chain.push_back(MakeTransformFactory<LambdaTransform>(
      "copy", [](const Value& v, const Transform::EmitFn& emit) {
        emit(kChanOut, v);
      }));
  return chain;
}

ValueList IntLoad(int n) {
  ValueList items;
  items.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    items.push_back(Value(int64_t{i}));
  }
  return items;
}

PipelineOptions RecoveryOptions(Discipline discipline) {
  PipelineOptions options;
  options.discipline = discipline;
  options.processing_cost = 20;
  options.recovery.enabled = true;
  options.recovery.checkpoint_every = 8;
  return options;
}

PipelineRunStats RunWithFaults(Discipline discipline, int items, bool faults) {
  FaultPlan plan;
  if (faults) {
    plan.drop_invocation = 0.01;
    plan.drop_reply = 0.01;
  }
  FaultInjector injector(plan);
  PipelineInstruments instruments;
  instruments.fault = &injector;
  if (faults) {
    // The stateful filter (first stage; the conventional build interposes a
    // pipe before it) dies mid-stream and must resume from its checkpoint.
    instruments.on_built = [&injector, discipline](Kernel& kernel,
                                                   PipelineHandle& handle) {
      Uid victim = discipline == Discipline::kConventional ? handle.ejects[2]
                                                           : handle.ejects[1];
      injector.ScheduleCrash(kernel, Tick{12'000}, victim);
    };
  }
  return RunPipelineMeasured(KernelOptions(), IntLoad(items), SumChain(),
                             RecoveryOptions(discipline), instruments);
}

void BM_FaultRecovery(benchmark::State& state) {
  Discipline discipline = static_cast<Discipline>(state.range(0));
  bool faults = state.range(1) != 0;
  int items = 120;
  PipelineRunStats clean;
  PipelineRunStats measured;
  for (auto _ : state) {
    if (faults) {
      clean = RunWithFaults(discipline, items, false);
    }
    measured = RunWithFaults(discipline, items, faults);
    benchmark::DoNotOptimize(measured.output.size());
  }
  state.SetItemsProcessed(state.iterations() * items);
  state.SetLabel(std::string(DisciplineName(discipline)) +
                 (faults ? "/faulty" : "/fault-free"));
  bool output_ok = faults ? measured.output == clean.output
                          : measured.output.size() == static_cast<size_t>(items);
  state.counters["output_ok"] = output_ok ? 1 : 0;
  state.counters["timeouts"] = static_cast<double>(measured.timeouts);
  state.counters["retries"] = static_cast<double>(measured.retries);
  state.counters["dropped"] = static_cast<double>(measured.messages_dropped);
  state.counters["redelivered_dropped"] =
      static_cast<double>(measured.redeliveries_dropped);
  state.counters["recoveries"] = static_cast<double>(measured.recoveries);
  state.counters["crashes"] = static_cast<double>(measured.crashes);
  state.counters["virtual_us"] = static_cast<double>(measured.virtual_time);
}
BENCHMARK(BM_FaultRecovery)
    ->ArgsProduct({{0, 1, 2}, {0, 1}})
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace eden

EDEN_BENCH_MAIN("fault_recovery")
