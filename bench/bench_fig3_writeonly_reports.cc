// Experiment F3 — Figure 3: "An Eden pipeline in the write-only discipline,
// with Report Streams."
//
// Topology (as in the figure): source and F1 produce reports as well as
// normal output; F2 is pure. The reports from source and F1 are directed to
// a common destination ("perhaps a window on a display"). In the write-only
// discipline fan-OUT is native: the producers simply Push to the window.
#include "bench/bench_util.h"
#include "src/filters/transforms.h"

namespace eden {
namespace {

struct Fig3Result {
  Stats delta;
  Tick virtual_time;
  size_t output_items;
  size_t report_items;
  size_t ejects;
};

Fig3Result RunFigure3(int items, int report_every) {
  Kernel kernel;
  Stats before = kernel.stats();

  PushSource::Options source_options;
  source_options.report_every = report_every;
  PushSource& source =
      kernel.CreateLocal<PushSource>(BenchLines(items), source_options);

  WriteOnlyFilter& f1 = kernel.CreateLocal<WriteOnlyFilter>(
      std::make_unique<ReportingTransform>(std::make_unique<CopyTransform>(),
                                           report_every));
  WriteOnlyFilter& f2 =
      kernel.CreateLocal<WriteOnlyFilter>(std::make_unique<CopyTransform>());

  PushSink& sink = kernel.CreateLocal<PushSink>();
  PushSink& window = kernel.CreateLocal<PushSink>();

  f2.BindOutput(std::string(kChanOut), sink.uid(), Value(std::string(kChanIn)));
  f1.BindOutput(std::string(kChanOut), f2.uid(), Value(std::string(kChanIn)));
  f1.BindOutput(std::string(kChanReport), window.uid(), Value(std::string(kChanIn)));
  source.BindOutput(f1.uid(), Value(std::string(kChanIn)));
  source.BindReport(window.uid(), Value(std::string(kChanIn)));

  kernel.RunUntil([&] { return sink.done(); });
  kernel.Run(1'000'000);  // drain report streams

  Fig3Result result;
  result.delta = kernel.stats() - before;
  result.virtual_time = kernel.now();
  result.output_items = sink.items().size();
  result.report_items = window.items().size();
  result.ejects = 6;  // source, f1, f2, sink, window... (window + sink + 4)
  result.ejects = kernel.stats().ejects_created;
  return result;
}

void BM_Fig3WriteOnlyReports(benchmark::State& state) {
  int items = 2000;
  int report_every = static_cast<int>(state.range(0));
  Fig3Result last{};
  for (auto _ : state) {
    last = RunFigure3(items, report_every);
    benchmark::DoNotOptimize(last.output_items);
  }
  state.SetItemsProcessed(state.iterations() * items);
  state.counters["ejects"] = static_cast<double>(last.ejects);
  state.counters["output_items"] = static_cast<double>(last.output_items);
  state.counters["report_items"] = static_cast<double>(last.report_items);
  state.counters["inv_per_datum"] =
      static_cast<double>(last.delta.invocations_sent) /
      static_cast<double>(last.output_items);
  state.counters["virtual_us_per_datum"] =
      static_cast<double>(last.virtual_time) / static_cast<double>(last.output_items);
}
BENCHMARK(BM_Fig3WriteOnlyReports)->Arg(10)->Arg(100)->Arg(1000)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace eden

EDEN_BENCH_MAIN("fig3_writeonly_reports")
