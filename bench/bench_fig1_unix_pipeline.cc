// Experiment F1 — Figure 1: "A Pipeline in Unix."
//
// The conventional discipline: filters perform active input AND active
// output, so every junction needs a passive-buffer Eject (the Unix pipe).
// For n filters this costs 2n+3 Ejects and 2n+2 invocations per datum.
//
// Sweep: pipeline length n = 1..16 (the paper's figure shows n = 3), with
// the 3-filter row being the direct Figure 1 reproduction.
#include "bench/bench_util.h"

namespace eden {
namespace {

void BM_Fig1UnixPipeline(benchmark::State& state) {
  size_t stages = static_cast<size_t>(state.range(0));
  int items = 2000;
  PipelineRunStats last;
  for (auto _ : state) {
    PipelineOptions options;
    options.discipline = Discipline::kConventional;
    last = RunPipelineMeasured(KernelOptions(), BenchLines(items), CopyChain(stages),
                               options);
    benchmark::DoNotOptimize(last.items_out);
  }
  state.SetItemsProcessed(state.iterations() * items);
  ReportPipelineCounters(state, last, stages, Discipline::kConventional);
}
BENCHMARK(BM_Fig1UnixPipeline)->Arg(1)->Arg(2)->Arg(3)->Arg(4)->Arg(8)->Arg(16)
    ->Unit(benchmark::kMillisecond);

// The same Figure 1 pipeline with realistic filters rather than copies:
// grep | upper | nl (three filters, matching the figure's F1 F2 F3).
void BM_Fig1RealFilters(benchmark::State& state) {
  std::vector<TransformFactory> chain = {
      [] {
        return std::make_unique<LambdaTransform>(
            "grep", [](const Value& v, const Transform::EmitFn& emit) {
              if (v.StrOr("").find('=') != std::string::npos) {
                emit(kChanOut, v);
              }
            });
      },
      [] {
        return std::make_unique<LambdaTransform>(
            "upper", [](const Value& v, const Transform::EmitFn& emit) {
              std::string s = v.StrOr("");
              for (char& c : s) {
                c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
              }
              emit(kChanOut, Value(std::move(s)));
            });
      },
      [] {
        struct Nl : Transform {
          int64_t n = 0;
          void OnItem(const Value& v, const EmitFn& emit) override {
            emit(kChanOut, Value(std::to_string(++n) + "\t" + v.StrOr("")));
          }
          std::string name() const override { return "nl"; }
        };
        return std::make_unique<Nl>();
      },
  };
  int items = 2000;
  PipelineRunStats last;
  for (auto _ : state) {
    PipelineOptions options;
    options.discipline = Discipline::kConventional;
    last = RunPipelineMeasured(KernelOptions(), BenchLines(items), chain, options);
    benchmark::DoNotOptimize(last.items_out);
  }
  state.SetItemsProcessed(state.iterations() * items);
  ReportPipelineCounters(state, last, 3, Discipline::kConventional);
}
BENCHMARK(BM_Fig1RealFilters)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace eden

EDEN_BENCH_MAIN("fig1_unix_pipeline")
