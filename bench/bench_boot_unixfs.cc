// Experiment C6 — the §7 bootstrap transput system.
//
// Round trip: NewStream reads a host file into an Eden stream, a filter
// chain processes it, UseStream writes it back — the exact workflow the
// prototype ran against the real Unix file system. Measured: end-to-end
// virtual time, messages per line, and simulator throughput, for varying
// file sizes and batch factors.
#include "bench/bench_util.h"
#include "src/core/filter_eject.h"
#include "src/core/framing.h"
#include "src/fs/unix_fs.h"

namespace eden {
namespace {

std::string MakeFortranFile(int lines) {
  Rng rng(7);
  std::string text;
  for (int i = 0; i < lines; ++i) {
    text += rng.Chance(0.3) ? "C comment " + std::to_string(i) + "\n"
                            : "      V" + std::to_string(i) + " = " +
                                  rng.Word(1, 5) + "\n";
  }
  return text;
}

void BM_BootstrapRoundTrip(benchmark::State& state) {
  int lines = static_cast<int>(state.range(0));
  std::string input = MakeFortranFile(lines);
  uint64_t invocations = 0;
  Tick virtual_time = 0;
  size_t lines_out = 0;
  for (auto _ : state) {
    Kernel kernel;
    HostFs host;
    host.Put("/in.f", input);
    UnixFileSystemEject& ufs = kernel.CreateLocal<UnixFileSystemEject>(host);

    InvokeResult opened = kernel.InvokeAndRun(
        ufs.uid(), "NewStream", Value().Set("path", Value("/in.f")));
    Uid stream = *opened.value.Field("stream").AsUid();

    ReadOnlyFilter::Options filter_options;
    filter_options.source = stream;
    ReadOnlyFilter& strip = kernel.CreateLocal<ReadOnlyFilter>(
        std::make_unique<LambdaTransform>(
            "strip",
            [](const Value& v, const Transform::EmitFn& emit) {
              if (v.StrOr("").rfind("C", 0) != 0) {
                emit(kChanOut, v);
              }
            }),
        filter_options);

    Stats before = kernel.stats();
    Tick start = kernel.now();
    InvokeResult used = kernel.InvokeAndRun(
        ufs.uid(), "UseStream",
        Value().Set("path", Value("/out.f")).Set("source", Value(strip.uid())));
    Uid sink = *used.value.Field("file").AsUid();
    kernel.RunUntil([&] { return !kernel.IsActive(sink); });
    invocations = (kernel.stats() - before).invocations_sent;
    virtual_time = kernel.now() - start;
    lines_out = SplitLines(*host.Get("/out.f")).size();
    benchmark::DoNotOptimize(lines_out);
  }
  state.SetItemsProcessed(state.iterations() * lines);
  state.counters["lines_in"] = static_cast<double>(lines);
  state.counters["lines_out"] = static_cast<double>(lines_out);
  state.counters["inv_per_line"] = static_cast<double>(invocations) / lines;
  state.counters["vus_per_line"] = static_cast<double>(virtual_time) / lines;
}
BENCHMARK(BM_BootstrapRoundTrip)->Arg(100)->Arg(1000)->Arg(10000)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace eden

EDEN_BENCH_MAIN("boot_unixfs")
