// Experiment C3 — §4 laziness and buffer-ahead.
//
// "No data flows until a sink is connected to the pipeline... Laziness,
//  however, is not desirable in a system which permits parallel execution.
//  Instead ... each Eject in a pipeline should read some input and buffer-up
//  some output, and then suspend processing pending a request for output."
//
// Sweep the work-ahead allowance k = 0..32 on a distributed 3-filter
// pipeline. k = 0 is fully lazy (lowest pre-sink work, highest per-datum
// latency: every Transfer walks to the source); larger k overlaps stages.
// Counters: time-to-first-datum, total completion time, and the amount of
// work done before any sink existed.
#include "bench/bench_util.h"

namespace eden {
namespace {

void BM_WorkAheadSweep(benchmark::State& state) {
  size_t work_ahead = static_cast<size_t>(state.range(0));
  int items = 1000;
  PipelineRunStats run;
  for (auto _ : state) {
    KernelOptions kernel_options;
    kernel_options.costs.cross_node_latency = 400;
    PipelineOptions options;
    options.discipline = Discipline::kReadOnly;
    // "each Eject in a pipeline should read some input and buffer-up some
    // output" (§4): the sweep applies the allowance k to both sides.
    options.work_ahead = work_ahead;
    options.lookahead = work_ahead;
    options.distinct_nodes = true;  // overlap only pays off with real latency
    // Each filter does real (virtual) work per item; buffering ahead lets
    // that work overlap the Transfer round trips.
    options.processing_cost = 600;
    run = RunPipelineMeasured(kernel_options, BenchLines(items), CopyChain(3),
                              options);
    benchmark::DoNotOptimize(run.items_out);
  }
  state.SetItemsProcessed(state.iterations() * items);
  state.counters["work_ahead"] = static_cast<double>(work_ahead);
  state.counters["first_item_at_vus"] = static_cast<double>(run.first_item_at);
  state.counters["completion_vus"] = static_cast<double>(run.virtual_time);
  state.counters["vus_per_datum"] =
      static_cast<double>(run.virtual_time) / items;
}
BENCHMARK(BM_WorkAheadSweep)->Arg(0)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Arg(16)->Arg(32)
    ->Unit(benchmark::kMillisecond);

// "No data flows until a sink is connected": build source + filters with
// start_on_demand, run the kernel to quiescence WITHOUT a sink, then attach
// one. Counters report items produced before vs after.
void BM_NoSinkNoData(benchmark::State& state) {
  int items = 500;
  uint64_t produced_before_sink = 0;
  uint64_t produced_after_sink = 0;
  for (auto _ : state) {
    Kernel kernel;
    VectorSource::Options source_options;
    source_options.start_on_demand = true;
    source_options.work_ahead = 4;
    VectorSource& source =
        kernel.CreateLocal<VectorSource>(BenchLines(items), source_options);
    ReadOnlyFilter::Options filter_options;
    filter_options.source = source.uid();
    filter_options.start_on_demand = true;
    filter_options.work_ahead = 4;
    ReadOnlyFilter& filter = kernel.CreateLocal<ReadOnlyFilter>(
        std::make_unique<LambdaTransform>(
            "copy",
            [](const Value& v, const Transform::EmitFn& emit) { emit(kChanOut, v); }),
        filter_options);

    kernel.Run();  // quiesce without a sink
    produced_before_sink = source.produced_count();

    PullSink& sink = kernel.CreateLocal<PullSink>(filter.uid(),
                                                  Value(std::string(kChanOut)));
    kernel.RunUntil([&] { return sink.done(); });
    produced_after_sink = source.produced_count();
    benchmark::DoNotOptimize(produced_after_sink);
  }
  state.SetItemsProcessed(state.iterations() * items);
  state.counters["produced_before_sink"] =
      static_cast<double>(produced_before_sink);
  state.counters["produced_after_sink"] = static_cast<double>(produced_after_sink);
}
BENCHMARK(BM_NoSinkNoData)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace eden

EDEN_BENCH_MAIN("claim_laziness")
