// Experiment OV — overload: a producer roughly 10x faster than its consumer
// (filter service time ~10x the per-message transport cost), swept across
// hiwat settings.
//
// The claims measured, per hiwat:
//   survived      1 when every datum came out, in order, with a clean
//                 InvariantMonitor — flow control lost nothing under a
//                 sustained rate mismatch.
//   queue_hw_max  largest depth any acceptor/server face ever reached; the
//                 watermark bound means it never exceeds hiwat, i.e. memory
//                 stays O(hiwat) no matter how long the overload lasts.
//   hiwat_hits    saturation episodes observed (the overload was real).
//   control_latency_ticks  (write-only bench) virtual ticks from injecting a
//                 control-band push mid-overload to the sink draining it:
//                 bands keep control latency independent of data saturation.
#include "bench/bench_util.h"

#include "src/core/stream.h"

namespace eden {
namespace {

// Filter service time per item. Default transport cost per datum is a few
// hundred ticks (invocation_send 100 + dispatch + switches per hop), so this
// makes the consumer an order of magnitude slower than the producer.
constexpr Tick kSlowConsumer = 2500;

// Sum one counter across every queue in the snapshot's "flow" section.
uint64_t SumFlow(const MetricsRegistry& metrics, std::string_view field) {
  uint64_t total = 0;
  Value snapshot = metrics.Snapshot();  // keep alive while we walk into it
  if (const ValueMap* flows = snapshot.Field("flow").AsMap()) {
    for (const auto& [label, counters] : *flows) {
      total += static_cast<uint64_t>(counters.Field(field).IntOr(0));
    }
  }
  return total;
}

// Largest high_water over every acceptor/server face (each face is bounded
// by its hiwat; the "pipe/" gauge is the sum of both faces, so it is
// excluded from the per-face bound).
uint64_t MaxFaceHighWater(const MetricsRegistry& metrics) {
  uint64_t max_hw = 0;
  Value snapshot = metrics.Snapshot();  // keep alive while we walk into it
  if (const ValueMap* queues = snapshot.Field("queues").AsMap()) {
    for (const auto& [label, gauge] : *queues) {
      if (label.rfind("acceptor/", 0) == 0 || label.rfind("server/", 0) == 0) {
        uint64_t hw = static_cast<uint64_t>(gauge.Field("high_water").IntOr(0));
        max_hw = hw > max_hw ? hw : max_hw;
      }
    }
  }
  return max_hw;
}

void BM_OverloadConventional(benchmark::State& state) {
  size_t hiwat = static_cast<size_t>(state.range(0));
  int items = 256;
  PipelineRunStats last;
  uint64_t hiwat_hits = 0;
  uint64_t queue_hw = 0;
  bool survived = false;
  for (auto _ : state) {
    MetricsRegistry metrics;
    InvariantMonitor monitor;
    PipelineInstruments instruments;
    instruments.metrics = &metrics;
    instruments.monitor = &monitor;
    PipelineOptions options;
    options.discipline = Discipline::kConventional;
    options.processing_cost = kSlowConsumer;
    options.pipe_capacity = hiwat;
    options.acceptor_capacity = hiwat;
    options.work_ahead = hiwat;
    ValueList input = BenchLines(items);
    last = RunPipelineMeasured(KernelOptions(), input, CopyChain(1), options,
                               instruments);
    hiwat_hits = SumFlow(metrics, "hiwat_hits");
    queue_hw = MaxFaceHighWater(metrics);
    survived = last.output == input && last.invariant_violations == 0;
    benchmark::DoNotOptimize(last.items_out);
  }
  state.SetItemsProcessed(state.iterations() * items);
  state.counters["items_out"] = static_cast<double>(last.items_out);
  state.counters["survived"] = survived ? 1 : 0;
  state.counters["violations"] = static_cast<double>(last.invariant_violations);
  state.counters["hiwat_hits"] = static_cast<double>(hiwat_hits);
  state.counters["queue_hw_max"] = static_cast<double>(queue_hw);
  state.counters["queue_bounded"] = queue_hw <= hiwat ? 1 : 0;
  state.counters["virtual_us_per_datum"] =
      static_cast<double>(last.virtual_time) / static_cast<double>(items);
}
BENCHMARK(BM_OverloadConventional)->Arg(2)->Arg(4)->Arg(8)->Arg(16)
    ->Unit(benchmark::kMillisecond);

// Write-only overload with a control-band push injected mid-saturation: the
// sink timestamps the drain, giving the control latency the band exists for.
void BM_OverloadControlLatency(benchmark::State& state) {
  size_t hiwat = static_cast<size_t>(state.range(0));
  int items = 256;
  const Tick kInjectAt = 20'000;  // well inside the saturated phase
  double latency = -1;
  uint64_t hiwat_hits = 0;
  size_t items_out = 0;
  for (auto _ : state) {
    Kernel kernel;
    MetricsRegistry metrics;
    kernel.set_metrics(&metrics);
    PipelineOptions options;
    options.discipline = Discipline::kWriteOnly;
    options.processing_cost = kSlowConsumer;
    options.acceptor_capacity = hiwat;
    PipelineHandle handle =
        BuildPipeline(kernel, BenchLines(items), CopyChain(1), options);
    handle.LabelAll(metrics);
    Uid sink_uid = handle.sink;
    kernel.ScheduleAction(kInjectAt, [&kernel, sink_uid] {
      kernel.ExternalInvoke(
          sink_uid, "Push",
          MakePushArgs(Value(std::string(kChanIn)),
                       {Value(std::string("ping"))}, false, Band::kControl),
          [](InvokeResult) {});
    });
    kernel.RunUntil([&handle] { return handle.done(); });
    items_out = handle.output().size();
    const std::vector<Tick>& drained = handle.push_sink->control_drained_at();
    latency = drained.empty() ? -1
                              : static_cast<double>(drained[0] - kInjectAt);
    hiwat_hits = SumFlow(metrics, "hiwat_hits");
    benchmark::DoNotOptimize(latency);
  }
  state.SetItemsProcessed(state.iterations() * items);
  state.counters["items_out"] = static_cast<double>(items_out);
  state.counters["hiwat_hits"] = static_cast<double>(hiwat_hits);
  state.counters["control_latency_ticks"] = latency;
}
BENCHMARK(BM_OverloadControlLatency)->Arg(2)->Arg(8)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace eden

EDEN_BENCH_MAIN("overload")
