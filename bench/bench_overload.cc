// Experiment OV — overload: a producer roughly 10x faster than its consumer
// (filter service time ~10x the per-message transport cost), swept across
// hiwat settings.
//
// The claims measured, per hiwat:
//   survived      1 when every datum came out, in order, with a clean
//                 InvariantMonitor — flow control lost nothing under a
//                 sustained rate mismatch.
//   queue_hw_max  largest depth any acceptor/server face ever reached; the
//                 watermark bound means it never exceeds hiwat, i.e. memory
//                 stays O(hiwat) no matter how long the overload lasts.
//   hiwat_hits    saturation episodes observed (the overload was real).
//   control_latency_ticks  (write-only bench) virtual ticks from injecting a
//                 control-band push mid-overload to the sink draining it:
//                 bands keep control latency independent of data saturation.
//
// The conventional sweep additionally runs under a TelemetrySampler with a
// `backlog count:hiwat >= 1` SLO rule: peak_rate_* / topk_* columns report
// the peak-window invocation rate and the sketch's hottest stage (excluded
// from the bench_compare counter gate by prefix), and two sidecars land per
// hiwat — TELEMETRY_overload_h<hiwat>.json (the windowed series; the hiwat
// crossing window is visible in the `hiwat` counter ring) and
// TELEMETRY_overload_tracks_h<hiwat>.json (Chrome trace with Perfetto
// counter tracks riding next to the spans).
#include <fstream>

#include "bench/bench_util.h"

#include "src/core/stream.h"
#include "src/eden/slo.h"
#include "src/eden/trace_export.h"

namespace eden {
namespace {

// Filter service time per item. Default transport cost per datum is a few
// hundred ticks (invocation_send 100 + dispatch + switches per hop), so this
// makes the consumer an order of magnitude slower than the producer.
constexpr Tick kSlowConsumer = 2500;

// Sum one counter across every queue in the snapshot's "flow" section.
uint64_t SumFlow(const MetricsRegistry& metrics, std::string_view field) {
  uint64_t total = 0;
  Value snapshot = metrics.Snapshot();  // keep alive while we walk into it
  if (const ValueMap* flows = snapshot.Field("flow").AsMap()) {
    for (const auto& [label, counters] : *flows) {
      total += static_cast<uint64_t>(counters.Field(field).IntOr(0));
    }
  }
  return total;
}

// Largest high_water over every acceptor/server face (each face is bounded
// by its hiwat; the "pipe/" gauge is the sum of both faces, so it is
// excluded from the per-face bound).
uint64_t MaxFaceHighWater(const MetricsRegistry& metrics) {
  uint64_t max_hw = 0;
  Value snapshot = metrics.Snapshot();  // keep alive while we walk into it
  if (const ValueMap* queues = snapshot.Field("queues").AsMap()) {
    for (const auto& [label, gauge] : *queues) {
      if (label.rfind("acceptor/", 0) == 0 || label.rfind("server/", 0) == 0) {
        uint64_t hw = static_cast<uint64_t>(gauge.Field("high_water").IntOr(0));
        max_hw = hw > max_hw ? hw : max_hw;
      }
    }
  }
  return max_hw;
}

void BM_OverloadConventional(benchmark::State& state) {
  size_t hiwat = static_cast<size_t>(state.range(0));
  int items = 256;
  PipelineRunStats last;
  uint64_t hiwat_hits = 0;
  uint64_t queue_hw = 0;
  bool survived = false;
  // Telemetry instruments live across iterations (cleared per run) so the
  // last iteration's series can be written as sidecars after the loop.
  TraceRecorder trace;
  TelemetrySampler telemetry;
  SloEngine slo;
  // Fires on the first window with a hiwat hit: the overload's onset, dated
  // by the window that completed the (sustain=1) streak.
  slo.Add("backlog count:hiwat >= 1");
  for (auto _ : state) {
    MetricsRegistry metrics;
    InvariantMonitor monitor;
    trace.Clear();
    telemetry.Clear();
    slo.ClearFirings();
    telemetry.set_slo(&slo);
    slo.set_trace_sink(trace.Hook());
    PipelineInstruments instruments;
    instruments.metrics = &metrics;
    instruments.monitor = &monitor;
    instruments.trace = &trace;
    instruments.telemetry = &telemetry;
    PipelineOptions options;
    options.discipline = Discipline::kConventional;
    options.processing_cost = kSlowConsumer;
    options.pipe_capacity = hiwat;
    options.acceptor_capacity = hiwat;
    options.work_ahead = hiwat;
    ValueList input = BenchLines(items);
    last = RunPipelineMeasured(KernelOptions(), input, CopyChain(1), options,
                               instruments);
    hiwat_hits = SumFlow(metrics, "hiwat_hits");
    queue_hw = MaxFaceHighWater(metrics);
    survived = last.output == input && last.invariant_violations == 0;
    benchmark::DoNotOptimize(last.items_out);
  }
  state.SetItemsProcessed(state.iterations() * items);
  state.counters["items_out"] = static_cast<double>(last.items_out);
  state.counters["survived"] = survived ? 1 : 0;
  state.counters["violations"] = static_cast<double>(last.invariant_violations);
  state.counters["hiwat_hits"] = static_cast<double>(hiwat_hits);
  state.counters["queue_hw_max"] = static_cast<double>(queue_hw);
  state.counters["queue_bounded"] = queue_hw <= hiwat ? 1 : 0;
  state.counters["virtual_us_per_datum"] =
      static_cast<double>(last.virtual_time) / static_cast<double>(items);
  // Telemetry columns: peak-window rate and heavy hitters (peak_rate_* /
  // topk_* are excluded from the counter gate; slo_fired is deterministic
  // and gated). The doctor's time axis for this data lives in the sidecars.
  TelemetryVerdict tv = DiagnoseTelemetry(telemetry);
  state.counters["peak_rate_invoke"] = tv.valid ? tv.peak_rate : 0;
  state.counters["peak_rate_window"] =
      tv.valid ? static_cast<double>(tv.peak_window) : -1;
  state.counters["topk_hot_count"] = static_cast<double>(tv.hot_count);
  state.counters["topk_hiwat_count"] = static_cast<double>(
      tv.top_hiwat.empty() ? 0 : tv.top_hiwat.front().count);
  state.counters["slo_fired"] = static_cast<double>(slo.firings().size());
  const std::string suffix = "_h" + std::to_string(hiwat) + ".json";
  std::ofstream("TELEMETRY_overload" + suffix,
                std::ios::binary | std::ios::trunc)
      << telemetry.ToJson();
  ChromeTraceExporter tracks(trace);
  tracks.set_telemetry(&telemetry);
  tracks.WriteFile("TELEMETRY_overload_tracks" + suffix);
}
BENCHMARK(BM_OverloadConventional)->Arg(2)->Arg(4)->Arg(8)->Arg(16)
    ->Unit(benchmark::kMillisecond);

// Write-only overload with a control-band push injected mid-saturation: the
// sink timestamps the drain, giving the control latency the band exists for.
void BM_OverloadControlLatency(benchmark::State& state) {
  size_t hiwat = static_cast<size_t>(state.range(0));
  int items = 256;
  const Tick kInjectAt = 20'000;  // well inside the saturated phase
  double latency = -1;
  uint64_t hiwat_hits = 0;
  size_t items_out = 0;
  for (auto _ : state) {
    Kernel kernel;
    MetricsRegistry metrics;
    kernel.set_metrics(&metrics);
    PipelineOptions options;
    options.discipline = Discipline::kWriteOnly;
    options.processing_cost = kSlowConsumer;
    options.acceptor_capacity = hiwat;
    PipelineHandle handle =
        BuildPipeline(kernel, BenchLines(items), CopyChain(1), options);
    handle.LabelAll(metrics);
    Uid sink_uid = handle.sink;
    kernel.ScheduleAction(kInjectAt, [&kernel, sink_uid] {
      kernel.ExternalInvoke(
          sink_uid, "Push",
          MakePushArgs(Value(std::string(kChanIn)),
                       {Value(std::string("ping"))}, false, Band::kControl),
          [](InvokeResult) {});
    });
    kernel.RunUntil([&handle] { return handle.done(); });
    items_out = handle.output().size();
    const std::vector<Tick>& drained = handle.push_sink->control_drained_at();
    latency = drained.empty() ? -1
                              : static_cast<double>(drained[0] - kInjectAt);
    hiwat_hits = SumFlow(metrics, "hiwat_hits");
    benchmark::DoNotOptimize(latency);
  }
  state.SetItemsProcessed(state.iterations() * items);
  state.counters["items_out"] = static_cast<double>(items_out);
  state.counters["hiwat_hits"] = static_cast<double>(hiwat_hits);
  state.counters["control_latency_ticks"] = latency;
}
BENCHMARK(BM_OverloadControlLatency)->Arg(2)->Arg(8)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace eden

EDEN_BENCH_MAIN("overload")
