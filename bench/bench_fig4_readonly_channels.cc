// Experiment F4 — Figure 4: "The pipeline of Figure 3 in the read-only
// discipline", using channel identifiers.
//
// Same function as Figure 3, but every stream is pulled: the sink reads
// Read(Output) from F2, and the multi-source Report Window issues
// Read(ReportStream) requests against source and F1 directly. No passive
// buffers appear, and the Eject census equals Figure 3's.
#include "bench/bench_util.h"
#include "src/devices/devices.h"
#include "src/filters/transforms.h"

namespace eden {
namespace {

struct Fig4Result {
  Stats delta;
  Tick virtual_time;
  size_t output_items;
  size_t report_items;
  size_t ejects;
};

Fig4Result RunFigure4(int items, int report_every, bool capability_channels) {
  Kernel kernel;
  Stats before = kernel.stats();

  VectorSource::Options source_options;
  source_options.report_every = report_every;
  source_options.capability_only_channels = capability_channels;
  VectorSource& source =
      kernel.CreateLocal<VectorSource>(BenchLines(items), source_options);

  ReadOnlyFilter::Options f1_options;
  f1_options.source = source.uid();
  f1_options.capability_only_channels = capability_channels;
  if (capability_channels) {
    f1_options.source_channel = Value(*source.server().MintCapability(
        std::string(kChanOut)));
  }
  ReadOnlyFilter& f1 = kernel.CreateLocal<ReadOnlyFilter>(
      std::make_unique<ReportingTransform>(std::make_unique<CopyTransform>(),
                                           report_every),
      f1_options);

  ReadOnlyFilter::Options f2_options;
  f2_options.source = f1.uid();
  if (capability_channels) {
    f2_options.source_channel =
        Value(*f1.server().MintCapability(std::string(kChanOut)));
  }
  ReadOnlyFilter& f2 = kernel.CreateLocal<ReadOnlyFilter>(
      std::make_unique<CopyTransform>(), f2_options);

  PullSink& sink = kernel.CreateLocal<PullSink>(
      f2.uid(), Value(std::string(kChanOut)));
  ReportWindow& window = kernel.CreateLocal<ReportWindow>();
  Value source_report = Value(std::string(kChanReport));
  Value f1_report = Value(std::string(kChanReport));
  if (capability_channels) {
    source_report = Value(*source.server().MintCapability(std::string(kChanReport)));
    f1_report = Value(*f1.server().MintCapability(std::string(kChanReport)));
  }
  window.Attach(source.uid(), source_report, "source");
  window.Attach(f1.uid(), f1_report, "F1");

  kernel.RunUntil([&] { return sink.done() && window.idle(); });

  Fig4Result result;
  result.delta = kernel.stats() - before;
  result.virtual_time = kernel.now();
  result.output_items = sink.items().size();
  result.report_items = window.lines().size();
  result.ejects = kernel.stats().ejects_created;
  return result;
}

void BM_Fig4ReadOnlyChannels(benchmark::State& state) {
  int items = 2000;
  int report_every = static_cast<int>(state.range(0));
  bool capabilities = state.range(1) != 0;
  Fig4Result last{};
  for (auto _ : state) {
    last = RunFigure4(items, report_every, capabilities);
    benchmark::DoNotOptimize(last.output_items);
  }
  state.SetItemsProcessed(state.iterations() * items);
  state.counters["ejects"] = static_cast<double>(last.ejects);
  state.counters["output_items"] = static_cast<double>(last.output_items);
  state.counters["report_items"] = static_cast<double>(last.report_items);
  state.counters["inv_per_datum"] =
      static_cast<double>(last.delta.invocations_sent) /
      static_cast<double>(last.output_items);
  state.counters["virtual_us_per_datum"] =
      static_cast<double>(last.virtual_time) / static_cast<double>(last.output_items);
}
BENCHMARK(BM_Fig4ReadOnlyChannels)
    ->ArgsProduct({{10, 100, 1000}, {0, 1}})
    ->ArgNames({"report_every", "capabilities"})
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace eden

EDEN_BENCH_MAIN("fig4_readonly_channels")
