// Ablation A4 — batching: amortizing the invocation tax.
//
// The paper's §4 accounting is per-datum; the obvious engineering response
// to an expensive location-independent invocation is to move several records
// per Transfer. This ablation sweeps the batch factor b on the Figure-2
// pipeline (n = 3): messages fall as (n+1)/b while the marginal payload
// bytes rise, so the virtual cost per datum approaches the pure byte cost.
// The crossover against the conventional discipline does NOT move: both
// disciplines batch equally well, and the 2x structural ratio persists at
// every b (also visible in bench_claim_invocations).
#include "bench/bench_util.h"

namespace eden {
namespace {

void BM_BatchSweep(benchmark::State& state) {
  int64_t batch = state.range(0);
  bool conventional = state.range(1) != 0;
  int items = 2000;
  PipelineRunStats run;
  for (auto _ : state) {
    PipelineOptions options;
    options.discipline =
        conventional ? Discipline::kConventional : Discipline::kReadOnly;
    options.batch = batch;
    options.work_ahead = static_cast<size_t>(batch) * 2;
    options.pipe_capacity = static_cast<size_t>(batch) * 4;
    run = RunPipelineMeasured(KernelOptions(), BenchLines(items), CopyChain(3),
                              options);
    benchmark::DoNotOptimize(run.items_out);
  }
  state.SetItemsProcessed(state.iterations() * items);
  state.counters["inv_per_datum"] =
      static_cast<double>(run.delta.invocations_sent) / items;
  state.counters["bytes_per_datum"] =
      static_cast<double>(run.delta.total_bytes()) / items;
  state.counters["vus_per_datum"] =
      static_cast<double>(run.virtual_time) / items;
}
BENCHMARK(BM_BatchSweep)
    ->ArgsProduct({{1, 2, 4, 8, 16, 32, 64}, {0, 1}})
    ->ArgNames({"batch", "conventional"})
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace eden

EDEN_BENCH_MAIN("ablation_batching")
