// Experiment F2 — Figure 2: "The same Pipeline in Eden with 'read only'
// Transput."
//
// Active input + passive output only: no passive buffers, n+2 Ejects,
// n+1 invocations per datum. Compare each row with the matching row of
// bench_fig1_unix_pipeline: the invocation ratio approaches 2x as n grows.
#include "bench/bench_util.h"
#include "src/eden/trace_export.h"

namespace eden {
namespace {

void BM_Fig2ReadOnlyPipeline(benchmark::State& state) {
  size_t stages = static_cast<size_t>(state.range(0));
  int items = 2000;
  PipelineRunStats last;
  for (auto _ : state) {
    PipelineOptions options;
    options.discipline = Discipline::kReadOnly;
    last = RunPipelineMeasured(KernelOptions(), BenchLines(items), CopyChain(stages),
                               options);
    benchmark::DoNotOptimize(last.items_out);
  }
  state.SetItemsProcessed(state.iterations() * items);
  ReportPipelineCounters(state, last, stages, Discipline::kReadOnly);
}
BENCHMARK(BM_Fig2ReadOnlyPipeline)->Arg(1)->Arg(2)->Arg(3)->Arg(4)->Arg(8)->Arg(16)
    ->Unit(benchmark::kMillisecond);

// The n = 3 pipeline again, with the full observability stack installed:
// bounded trace ring + metrics + monitor + wall-clock profiler. CI's
// instrumentation-overhead job compares this row's time against
// BM_Fig2ReadOnlyPipeline/3 and fails when the ratio exceeds 2x — the
// one-pointer-test hook contract, measured. The last iteration's profiler
// timeline lands in PROFILE_fig2.json for the artifact upload.
void BM_Fig2Instrumented(benchmark::State& state) {
  int items = 2000;
  TraceRecorder trace(65536);
  MetricsRegistry metrics;
  InvariantMonitor monitor;
  ShardProfiler profiler;
  PipelineRunStats last;
  for (auto _ : state) {
    state.PauseTiming();
    trace.Clear();
    metrics.Clear();
    monitor.Clear();
    profiler.Clear();
    state.ResumeTiming();
    PipelineInstruments instruments;
    instruments.metrics = &metrics;
    instruments.trace = &trace;
    instruments.monitor = &monitor;
    instruments.profiler = &profiler;
    PipelineOptions options;
    options.discipline = Discipline::kReadOnly;
    last = RunPipelineMeasured(KernelOptions(), BenchLines(items),
                               CopyChain(3), options, instruments);
    benchmark::DoNotOptimize(last.items_out);
  }
  state.SetItemsProcessed(state.iterations() * items);
  ReportPipelineCounters(state, last, 3, Discipline::kReadOnly);
  ShardProfileExporter(profiler).WriteFile("PROFILE_fig2.json");
}
BENCHMARK(BM_Fig2Instrumented)->Unit(benchmark::kMillisecond);

// The n = 3 pipeline with ONLY the telemetry sampler installed: CI's
// overhead job compares this row against BM_Fig2ReadOnlyPipeline/3 too, so
// the windowed-sampling hooks (trace feed + queue-depth observations) carry
// the same <= 2x contract as the full stack.
void BM_Fig2Telemetry(benchmark::State& state) {
  int items = 2000;
  TelemetrySampler telemetry;
  PipelineRunStats last;
  for (auto _ : state) {
    state.PauseTiming();
    telemetry.Clear();
    state.ResumeTiming();
    PipelineInstruments instruments;
    instruments.telemetry = &telemetry;
    PipelineOptions options;
    options.discipline = Discipline::kReadOnly;
    last = RunPipelineMeasured(KernelOptions(), BenchLines(items),
                               CopyChain(3), options, instruments);
    benchmark::DoNotOptimize(last.items_out);
  }
  state.SetItemsProcessed(state.iterations() * items);
  ReportPipelineCounters(state, last, 3, Discipline::kReadOnly);
  TelemetryVerdict tv = DiagnoseTelemetry(telemetry);
  state.counters["peak_rate_invoke"] = tv.valid ? tv.peak_rate : 0;
}
BENCHMARK(BM_Fig2Telemetry)->Unit(benchmark::kMillisecond);

// Head-to-head at Figure 1/2's n = 3: the counter "saving_vs_unix" is the
// §4 "roughly half as many invocations" claim, measured.
void BM_Fig2VsFig1Saving(benchmark::State& state) {
  int items = 2000;
  double saving = 0;
  for (auto _ : state) {
    PipelineOptions readonly_options;
    readonly_options.discipline = Discipline::kReadOnly;
    PipelineRunStats readonly_run = RunPipelineMeasured(
        KernelOptions(), BenchLines(items), CopyChain(3), readonly_options);

    PipelineOptions unix_options;
    unix_options.discipline = Discipline::kConventional;
    PipelineRunStats unix_run = RunPipelineMeasured(
        KernelOptions(), BenchLines(items), CopyChain(3), unix_options);

    saving = static_cast<double>(unix_run.delta.invocations_sent) /
             static_cast<double>(readonly_run.delta.invocations_sent);
    benchmark::DoNotOptimize(saving);
  }
  state.SetItemsProcessed(state.iterations() * items * 2);
  state.counters["saving_vs_unix"] = saving;  // predicted (2n+2)/(n+1) = 2.0
}
BENCHMARK(BM_Fig2VsFig1Saving)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace eden

EDEN_BENCH_MAIN("fig2_readonly_pipeline")
