// Ablation A3 — checkpoint frequency: durability vs. cost.
//
// "The checkpoint primitive is the only mechanism provided by the Eden
//  kernel whereby an Eject may access 'stable storage'." (§1). A file Eject
// that absorbs a stream must choose how often to checkpoint: every k lines.
// Small k bounds the data a crash can lose; each checkpoint costs virtual
// time and serializes the whole state (the passive representation is not
// incremental — matching the Eden primitive).
//
// The bench absorbs a 2000-line stream with k in {1,10,100,1000, once},
// reporting virtual time per line, checkpoint count and bytes written to
// stable storage; it then crashes the file mid-stream and reports how many
// lines a recovery actually retains.
#include "bench/bench_util.h"
#include "src/core/stream_reader.h"
#include "src/eden/eject.h"

namespace eden {
namespace {

// A file that absorbs a stream, checkpointing every `interval` lines
// (0 = only at end-of-stream).
class AbsorbingFile : public Eject {
 public:
  static constexpr const char* kType = "AbsorbingFile";

  AbsorbingFile(Kernel& kernel, Uid source, int64_t interval)
      : Eject(kernel, kType),
        reader_(*this, source, Value(std::string(kChanOut)),
                StreamReader::Options{4, 0}),
        interval_(interval) {}

  static void RegisterType(Kernel& kernel) {
    // Reactivation uses a source-less instance: it only serves reads.
    kernel.types().Register(kType, [](Kernel& k) {
      return std::make_unique<AbsorbingFile>(k, Uid(), 0);
    });
  }

  void OnStart() override {
    if (!reader_.source().IsNil()) {
      Spawn(Absorb());
    }
  }

  Value SaveState() override {
    ValueList lines;
    lines.reserve(lines_.size());
    for (const std::string& line : lines_) {
      lines.push_back(Value(line));
    }
    return Value().Set("lines", Value(std::move(lines)));
  }
  void RestoreState(const Value& state) override {
    lines_.clear();
    if (const ValueList* lines = state.Field("lines").AsList()) {
      for (const Value& line : *lines) {
        lines_.push_back(line.StrOr(""));
      }
    }
  }

  bool done() const { return done_; }
  size_t line_count() const { return lines_.size(); }

 private:
  Task<void> Absorb() {
    for (;;) {
      std::optional<Value> item = co_await reader_.Next();
      if (!item) {
        break;
      }
      lines_.push_back(item->StrOr(""));
      if (interval_ > 0 && static_cast<int64_t>(lines_.size()) % interval_ == 0) {
        Checkpoint();
        co_await Sleep(kernel_.costs().checkpoint);  // charge the disk write
      }
    }
    Checkpoint();
    co_await Sleep(kernel_.costs().checkpoint);
    done_ = true;
  }

  StreamReader reader_;
  int64_t interval_;
  std::vector<std::string> lines_;
  bool done_ = false;
};

void BM_CheckpointInterval(benchmark::State& state) {
  int64_t interval = state.range(0);
  int items = 2000;
  Tick vtime = 0;
  uint64_t checkpoints = 0;
  uint64_t stable_bytes = 0;
  for (auto _ : state) {
    Kernel kernel;
    VectorSource::Options source_options;
    source_options.work_ahead = 8;
    VectorSource& source =
        kernel.CreateLocal<VectorSource>(BenchLines(items), source_options);
    AbsorbingFile& file =
        kernel.CreateLocal<AbsorbingFile>(source.uid(), interval);
    kernel.RunUntil([&] { return file.done(); });
    vtime = kernel.now();
    checkpoints = kernel.stats().checkpoints;
    stable_bytes = kernel.store().total_bytes();
    benchmark::DoNotOptimize(file.line_count());
  }
  state.SetItemsProcessed(state.iterations() * items);
  state.counters["vus_per_line"] = static_cast<double>(vtime) / items;
  state.counters["checkpoints"] = static_cast<double>(checkpoints);
  state.counters["stable_bytes"] = static_cast<double>(stable_bytes);
}
BENCHMARK(BM_CheckpointInterval)->Arg(1)->Arg(10)->Arg(100)->Arg(1000)->Arg(0)
    ->ArgName("interval")->Unit(benchmark::kMillisecond);

void BM_CrashLossVsInterval(benchmark::State& state) {
  int64_t interval = state.range(0);
  int items = 2000;
  size_t retained = 0;
  for (auto _ : state) {
    Kernel kernel;
    AbsorbingFile::RegisterType(kernel);
    VectorSource::Options source_options;
    source_options.work_ahead = 8;
    VectorSource& source =
        kernel.CreateLocal<VectorSource>(BenchLines(items), source_options);
    AbsorbingFile& file =
        kernel.CreateLocal<AbsorbingFile>(source.uid(), interval);
    Uid file_uid = file.uid();
    // Crash mid-absorption.
    kernel.RunUntil([&] { return file.line_count() >= 1037; });
    kernel.Crash(file_uid);
    // Reactivate and count what survived.
    InvokeResult r = kernel.InvokeAndRun(file_uid, "NoSuchOp");
    (void)r;  // any invocation reactivates; the op itself may fail
    AbsorbingFile* revived = static_cast<AbsorbingFile*>(kernel.Find(file_uid));
    retained = revived != nullptr ? revived->line_count() : 0;
    benchmark::DoNotOptimize(retained);
  }
  state.counters["lines_at_crash"] = 1037;
  state.counters["lines_retained"] = static_cast<double>(retained);
  state.counters["max_loss_bound"] =
      interval > 0 ? static_cast<double>(interval) : 1000.0;
}
BENCHMARK(BM_CrashLossVsInterval)->Arg(1)->Arg(10)->Arg(100)->Arg(1000)->Arg(0)
    ->ArgName("interval")->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace eden

EDEN_BENCH_MAIN("ablation_checkpoint")
