// Shared helpers for the reproduction benchmarks.
//
// Every benchmark reports simulation-level counters (invocations per datum,
// Eject census, virtual microseconds) rather than host wall time alone: the
// paper's claims are about message structure, and the DES makes those counts
// exact. Host time still measures simulator throughput.
//
// Use EDEN_BENCH_MAIN("name") instead of BENCHMARK_MAIN(): besides the
// console table it writes the full result set to BENCH_<name>.json in the
// working directory (google-benchmark's JSON schema), so runs are diffable
// and machine-readable.
#ifndef BENCH_BENCH_UTIL_H_
#define BENCH_BENCH_UTIL_H_

#include <benchmark/benchmark.h>

#include <string>
#include <string_view>
#include <vector>

#include "src/core/pipeline.h"
#include "src/eden/analysis.h"
#include "src/eden/fault.h"
#include "src/eden/metrics.h"
#include "src/eden/monitor.h"
#include "src/eden/profile.h"
#include "src/eden/random.h"
#include "src/eden/telemetry.h"
#include "src/eden/trace.h"

namespace eden {

// A deterministic line workload (the "10k lines of Fortran" style input the
// paper's §3 filters were motivated by).
inline ValueList BenchLines(int n, uint64_t seed = 83) {
  Rng rng(seed);
  ValueList items;
  items.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    std::string line = rng.Chance(0.25) ? "C " : "      ";
    line += rng.Word(3, 10) + " = " + rng.Word(1, 6);
    items.push_back(Value(std::move(line)));
  }
  return items;
}

inline std::vector<TransformFactory> CopyChain(size_t n) {
  std::vector<TransformFactory> chain;
  for (size_t i = 0; i < n; ++i) {
    chain.push_back([] { return std::make_unique<LambdaTransform>(
                             "copy", [](const Value& v, const Transform::EmitFn& emit) {
                               emit(kChanOut, v);
                             }); });
  }
  return chain;
}

// Optional observers for a measured pipeline run. All pointers are borrowed
// and may be null; `fault` is installed before the pipeline is built (so
// build-time traffic is subject to it too), and `on_built` runs right after
// BuildPipeline — the place to schedule crashes against handle.ejects.
struct PipelineInstruments {
  FaultInjector* fault = nullptr;
  MetricsRegistry* metrics = nullptr;  // stages labeled with their role names
  TraceRecorder* trace = nullptr;      // hooked and labeled likewise
  InvariantMonitor* monitor = nullptr; // online invariant checking
  ShardProfiler* profiler = nullptr;   // wall-clock shard phase timings
  TelemetrySampler* telemetry = nullptr;  // windowed virtual-time series
  // Run the PipelineDoctor over `trace` (+ `metrics`) after the run and
  // attach the Diagnosis to the stats. Requires `trace`.
  bool diagnose = false;
  std::function<void(Kernel&, PipelineHandle&)> on_built;
};

struct PipelineRunStats {
  Stats delta;
  Tick virtual_time = 0;
  size_t items_out = 0;
  size_t ejects = 0;
  size_t passive_buffers = 0;
  Tick first_item_at = -1;
  // Failure-handling counters, lifted out of `delta` so fault benchmarks
  // need not reach into Kernel::stats() fields by name.
  uint64_t timeouts = 0;
  uint64_t retries = 0;
  uint64_t redeliveries = 0;
  uint64_t recoveries = 0;
  uint64_t redeliveries_dropped = 0;
  uint64_t messages_dropped = 0;
  uint64_t crashes = 0;
  // The collected sink output (byte-identity checks across runs).
  ValueList output;
  // When an InvariantMonitor was installed: its end-of-run Check() count.
  uint64_t invariant_violations = 0;
  // When instruments.diagnose was set: the doctor's report and verdict.
  Value diagnosis;
  std::string verdict;

  // {stats: {...}, virtual_time, items_out, ejects, ...} for JSON dumps.
  Value ToValue() const {
    Value v;
    v.Set("stats", delta.ToValue());
    v.Set("virtual_time", Value(static_cast<int64_t>(virtual_time)));
    v.Set("items_out", Value(static_cast<uint64_t>(items_out)));
    v.Set("ejects", Value(static_cast<uint64_t>(ejects)));
    v.Set("passive_buffers", Value(static_cast<uint64_t>(passive_buffers)));
    v.Set("first_item_at", Value(static_cast<int64_t>(first_item_at)));
    v.Set("invariant_violations", Value(invariant_violations));
    if (!diagnosis.is_nil()) {
      v.Set("diagnosis", diagnosis);
    }
    return v;
  }
};

// Builds and runs one pipeline to completion under the given instruments,
// returning the stat deltas.
inline PipelineRunStats RunPipelineMeasured(const KernelOptions& kernel_options,
                                            ValueList input,
                                            const std::vector<TransformFactory>& chain,
                                            const PipelineOptions& options,
                                            const PipelineInstruments& instruments) {
  Kernel kernel(kernel_options);
  if (instruments.fault != nullptr) {
    kernel.set_fault_injector(instruments.fault);
  }
  if (instruments.metrics != nullptr) {
    kernel.set_metrics(instruments.metrics);
  }
  if (instruments.trace != nullptr) {
    kernel.set_tracer(instruments.trace->Hook());
  }
  if (instruments.monitor != nullptr) {
    if (instruments.trace != nullptr) {
      instruments.monitor->set_trace_sink(instruments.trace->Hook());
    }
    kernel.set_monitor(instruments.monitor);
  }
  if (instruments.profiler != nullptr) {
    kernel.set_profiler(instruments.profiler);
  }
  if (instruments.telemetry != nullptr) {
    kernel.set_telemetry(instruments.telemetry);
  }
  Stats before = kernel.stats();
  Tick start = kernel.now();
  PipelineHandle handle = BuildPipeline(kernel, std::move(input), chain, options);
  if (instruments.metrics != nullptr) {
    handle.LabelAll(*instruments.metrics);
  }
  if (instruments.trace != nullptr) {
    handle.LabelAll(*instruments.trace);
  }
  if (instruments.monitor != nullptr) {
    handle.LabelAll(*instruments.monitor);
  }
  if (instruments.telemetry != nullptr) {
    handle.LabelAll(*instruments.telemetry);
  }
  if (instruments.on_built) {
    instruments.on_built(kernel, handle);
  }
  kernel.RunUntil([&handle] { return handle.done(); });
  PipelineRunStats result;
  result.delta = kernel.stats() - before;
  result.virtual_time = kernel.now() - start;
  result.items_out = handle.output().size();
  result.ejects = handle.eject_count();
  result.passive_buffers = handle.passive_buffer_count;
  result.first_item_at = handle.first_item_at();
  result.timeouts = result.delta.timeouts;
  result.retries = result.delta.retries;
  result.redeliveries = result.delta.redeliveries;
  result.recoveries = result.delta.recoveries;
  result.redeliveries_dropped = result.delta.redeliveries_dropped;
  result.messages_dropped = result.delta.messages_dropped;
  result.crashes = result.delta.crashes;
  result.output = handle.output();
  if (instruments.monitor != nullptr) {
    result.invariant_violations = instruments.monitor->Check().size();
  }
  if (instruments.diagnose && instruments.trace != nullptr) {
    Diagnosis diagnosis =
        PipelineDoctor(*instruments.trace, instruments.metrics,
                       instruments.profiler, instruments.telemetry)
            .Diagnose();
    result.verdict = diagnosis.verdict;
    result.diagnosis = diagnosis.ToValue();
  }
  return result;
}

inline PipelineRunStats RunPipelineMeasured(const KernelOptions& kernel_options,
                                            ValueList input,
                                            const std::vector<TransformFactory>& chain,
                                            const PipelineOptions& options) {
  return RunPipelineMeasured(kernel_options, std::move(input), chain, options,
                             PipelineInstruments{});
}

// Attaches the standard counter set to a benchmark state.
inline void ReportPipelineCounters(benchmark::State& state,
                                   const PipelineRunStats& run, size_t stage_count,
                                   Discipline discipline) {
  double items = static_cast<double>(run.items_out);
  state.counters["inv_per_datum"] =
      static_cast<double>(run.delta.invocations_sent) / items;
  state.counters["predicted_inv"] =
      static_cast<double>(PredictedInvocationsPerDatum(discipline, stage_count));
  state.counters["msgs_per_datum"] =
      static_cast<double>(run.delta.total_messages()) / items;
  state.counters["switches_per_datum"] =
      static_cast<double>(run.delta.context_switches) / items;
  state.counters["ejects"] = static_cast<double>(run.ejects);
  state.counters["passive_buffers"] = static_cast<double>(run.passive_buffers);
  state.counters["virtual_us_per_datum"] =
      static_cast<double>(run.virtual_time) / items;
}

// BENCHMARK_MAIN() with a JSON results file. Unless the caller already asked
// for one, injects --benchmark_out=BENCH_<name>.json (and JSON format) before
// initialization; explicit command-line flags always win.
inline int RunBenchMain(const char* name, int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  bool has_out = false;
  bool has_format = false;
  for (int i = 1; i < argc; ++i) {
    std::string_view arg(argv[i]);
    has_out = has_out || arg.rfind("--benchmark_out=", 0) == 0;
    has_format = has_format || arg.rfind("--benchmark_out_format=", 0) == 0;
  }
  std::string out_flag = std::string("--benchmark_out=BENCH_") + name + ".json";
  std::string format_flag = "--benchmark_out_format=json";
  if (!has_out) {
    args.push_back(out_flag.data());
    if (!has_format) {
      args.push_back(format_flag.data());
    }
  }
  int count = static_cast<int>(args.size());
  benchmark::Initialize(&count, args.data());
  if (benchmark::ReportUnrecognizedArguments(count, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

}  // namespace eden

#define EDEN_BENCH_MAIN(name)                                  \
  int main(int argc, char** argv) {                            \
    return ::eden::RunBenchMain(name, argc, argv);             \
  }

#endif  // BENCH_BENCH_UTIL_H_
