// Shared helpers for the reproduction benchmarks.
//
// Every benchmark reports simulation-level counters (invocations per datum,
// Eject census, virtual microseconds) rather than host wall time alone: the
// paper's claims are about message structure, and the DES makes those counts
// exact. Host time still measures simulator throughput.
#ifndef BENCH_BENCH_UTIL_H_
#define BENCH_BENCH_UTIL_H_

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "src/core/pipeline.h"
#include "src/eden/random.h"

namespace eden {

// A deterministic line workload (the "10k lines of Fortran" style input the
// paper's §3 filters were motivated by).
inline ValueList BenchLines(int n, uint64_t seed = 83) {
  Rng rng(seed);
  ValueList items;
  items.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    std::string line = rng.Chance(0.25) ? "C " : "      ";
    line += rng.Word(3, 10) + " = " + rng.Word(1, 6);
    items.push_back(Value(std::move(line)));
  }
  return items;
}

inline std::vector<TransformFactory> CopyChain(size_t n) {
  std::vector<TransformFactory> chain;
  for (size_t i = 0; i < n; ++i) {
    chain.push_back([] { return std::make_unique<LambdaTransform>(
                             "copy", [](const Value& v, const Transform::EmitFn& emit) {
                               emit(kChanOut, v);
                             }); });
  }
  return chain;
}

struct PipelineRunStats {
  Stats delta;
  Tick virtual_time = 0;
  size_t items_out = 0;
  size_t ejects = 0;
  size_t passive_buffers = 0;
  Tick first_item_at = -1;
};

// Builds and runs one pipeline to completion, returning the stat deltas.
inline PipelineRunStats RunPipelineMeasured(const KernelOptions& kernel_options,
                                            ValueList input,
                                            const std::vector<TransformFactory>& chain,
                                            const PipelineOptions& options) {
  Kernel kernel(kernel_options);
  Stats before = kernel.stats();
  Tick start = kernel.now();
  PipelineHandle handle = BuildPipeline(kernel, std::move(input), chain, options);
  kernel.RunUntil([&handle] { return handle.done(); });
  PipelineRunStats result;
  result.delta = kernel.stats() - before;
  result.virtual_time = kernel.now() - start;
  result.items_out = handle.output().size();
  result.ejects = handle.eject_count();
  result.passive_buffers = handle.passive_buffer_count;
  result.first_item_at = handle.first_item_at();
  return result;
}

// Attaches the standard counter set to a benchmark state.
inline void ReportPipelineCounters(benchmark::State& state,
                                   const PipelineRunStats& run, size_t stage_count,
                                   Discipline discipline) {
  double items = static_cast<double>(run.items_out);
  state.counters["inv_per_datum"] =
      static_cast<double>(run.delta.invocations_sent) / items;
  state.counters["predicted_inv"] =
      static_cast<double>(PredictedInvocationsPerDatum(discipline, stage_count));
  state.counters["msgs_per_datum"] =
      static_cast<double>(run.delta.total_messages()) / items;
  state.counters["switches_per_datum"] =
      static_cast<double>(run.delta.context_switches) / items;
  state.counters["ejects"] = static_cast<double>(run.ejects);
  state.counters["passive_buffers"] = static_cast<double>(run.passive_buffers);
  state.counters["virtual_us_per_datum"] =
      static_cast<double>(run.virtual_time) / items;
}

}  // namespace eden

#endif  // BENCH_BENCH_UTIL_H_
