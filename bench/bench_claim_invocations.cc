// Experiments C1 & C7 — the §4 counting claims.
//
// "a sequence of n filters, a source and a sink can all be implemented by
//  n+2 Ejects ... only n+1 invocations are needed to transfer a datum from
//  one end of the pipeline to the other. Conversely, if each filter were to
//  perform active output as well as active input, 2n+2 invocations would be
//  needed, as would n+1 passive buffer Ejects."
//
// And C7: merging each passive buffer with its source also (roughly) halves
// context switches per datum. Counters expose measured vs predicted for
// every n; batching divides the message counts proportionally.
#include "bench/bench_util.h"

namespace eden {
namespace {

void RunClaim(benchmark::State& state, Discipline discipline) {
  size_t stages = static_cast<size_t>(state.range(0));
  int64_t batch = state.range(1);
  int items = 2000;
  PipelineRunStats last;
  for (auto _ : state) {
    PipelineOptions options;
    options.discipline = discipline;
    options.batch = batch;
    options.work_ahead = static_cast<size_t>(batch) * 4;
    last = RunPipelineMeasured(KernelOptions(), BenchLines(items), CopyChain(stages),
                               options);
    benchmark::DoNotOptimize(last.items_out);
  }
  state.SetItemsProcessed(state.iterations() * items);
  ReportPipelineCounters(state, last, stages, discipline);
  state.counters["predicted_inv"] =
      static_cast<double>(PredictedInvocationsPerDatum(discipline, stages)) /
      static_cast<double>(batch);
  state.counters["predicted_ejects"] =
      static_cast<double>(PredictedEjectCount(discipline, stages));
}

void BM_ReadOnlyInvocations(benchmark::State& state) {
  RunClaim(state, Discipline::kReadOnly);
}
void BM_WriteOnlyInvocations(benchmark::State& state) {
  RunClaim(state, Discipline::kWriteOnly);
}
void BM_ConventionalInvocations(benchmark::State& state) {
  RunClaim(state, Discipline::kConventional);
}

BENCHMARK(BM_ReadOnlyInvocations)
    ->ArgsProduct({{0, 1, 2, 4, 8, 16}, {1, 8}})
    ->ArgNames({"n", "batch"})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_WriteOnlyInvocations)
    ->ArgsProduct({{0, 1, 2, 4, 8, 16}, {1, 8}})
    ->ArgNames({"n", "batch"})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ConventionalInvocations)
    ->ArgsProduct({{0, 1, 2, 4, 8, 16}, {1, 8}})
    ->ArgNames({"n", "batch"})
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace eden

EDEN_BENCH_MAIN("claim_invocations")
