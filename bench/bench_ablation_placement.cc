// Ablation A2 — placement of pipeline Ejects across nodes.
//
// The paper's Eden ran on "several VAX processors connected together by
// 10 Mbit ethernet", and §4 notes that invocation cost is high *because*
// invocation is location-independent. This ablation quantifies what
// placement does to a read-only pipeline under that model:
//
//   colocated    every Eject on one node (no hop latency)
//   split        source+filters on node A, sink on node B (one WAN junction)
//   distributed  every Eject on its own node (every junction pays a hop)
//
// Messages counts are identical in all three — location independence — but
// virtual latency is not; with per-stage look-ahead the pipeline hides most
// of it.
#include "bench/bench_util.h"

namespace eden {
namespace {

enum class Placement { kColocated, kSplit, kDistributed };

PipelineRunStats RunPlacement(Placement placement, size_t lookahead) {
  KernelOptions kernel_options;
  kernel_options.costs.cross_node_latency = 400;
  Kernel kernel(kernel_options);
  int items = 1000;

  NodeId far = kernel.AddNode("far");

  PipelineOptions options;
  options.discipline = Discipline::kReadOnly;
  options.lookahead = lookahead;
  options.work_ahead = std::max<size_t>(lookahead, 1);
  options.batch = 4;

  // Build by hand to control placement.
  VectorSource::Options source_options;
  source_options.work_ahead = options.work_ahead;
  NodeId source_node = 0;
  VectorSource& source =
      kernel.Create<VectorSource>(source_node, BenchLines(items), source_options);

  Uid upstream = source.uid();
  std::vector<Uid> ejects = {source.uid()};
  for (int i = 0; i < 2; ++i) {
    NodeId node = placement == Placement::kDistributed
                      ? kernel.AddNode("f" + std::to_string(i))
                      : NodeId{0};
    ReadOnlyFilter::Options filter_options;
    filter_options.source = upstream;
    filter_options.batch = options.batch;
    filter_options.lookahead = options.lookahead;
    filter_options.work_ahead = options.work_ahead;
    ReadOnlyFilter& filter = kernel.Create<ReadOnlyFilter>(
        node,
        std::make_unique<LambdaTransform>(
            "copy",
            [](const Value& v, const Transform::EmitFn& emit) { emit(kChanOut, v); }),
        filter_options);
    upstream = filter.uid();
    ejects.push_back(filter.uid());
  }
  NodeId sink_node = placement == Placement::kColocated ? NodeId{0} : far;
  PullSink::Options sink_options;
  sink_options.batch = options.batch;
  sink_options.lookahead = options.lookahead;
  PullSink& sink = kernel.Create<PullSink>(sink_node, upstream,
                                           Value(std::string(kChanOut)), sink_options);

  Stats before = kernel.stats();
  Tick start = kernel.now();
  kernel.RunUntil([&] { return sink.done(); });

  PipelineRunStats result;
  result.delta = kernel.stats() - before;
  result.virtual_time = kernel.now() - start;
  result.items_out = sink.items().size();
  return result;
}

void BM_Placement(benchmark::State& state) {
  Placement placement = static_cast<Placement>(state.range(0));
  size_t lookahead = static_cast<size_t>(state.range(1));
  PipelineRunStats run;
  for (auto _ : state) {
    run = RunPlacement(placement, lookahead);
    benchmark::DoNotOptimize(run.items_out);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
  state.counters["vus_per_datum"] =
      static_cast<double>(run.virtual_time) / static_cast<double>(run.items_out);
  state.counters["msgs_per_datum"] =
      static_cast<double>(run.delta.total_messages()) /
      static_cast<double>(run.items_out);
  state.counters["cross_node_msgs"] =
      static_cast<double>(run.delta.cross_node_messages);
}
BENCHMARK(BM_Placement)
    ->ArgsProduct({{0, 1, 2}, {0, 8}})
    ->ArgNames({"placement", "lookahead"})
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace eden

EDEN_BENCH_MAIN("ablation_placement")
