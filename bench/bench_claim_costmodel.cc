// Experiment C2 — the §4 cost argument.
//
// "The cost of an invocation must inevitably be higher than that of a
//  system call in an ordinary operating system (because invocation is
//  location-independent), so such saving may be significant in Eden."
//
// Sweep the invocation cost (relative to a fixed intra-Eject local step)
// and measure virtual completion time for the same 3-filter pipeline in the
// read-only and conventional disciplines. As invocation cost dominates, the
// read-only speedup tends to the message ratio (2n+2)/(n+1) = 2.
// A second sweep distributes the pipeline across nodes, adding network
// latency — the regime the paper's Eden prototype (VAXen on Ethernet)
// actually ran in.
#include "bench/bench_util.h"

namespace eden {
namespace {

void BM_CostModelSweep(benchmark::State& state) {
  Tick invocation_cost = state.range(0);
  bool distributed = state.range(1) != 0;
  int items = 1000;
  constexpr size_t kStages = 3;

  double speedup = 0;
  Tick readonly_time = 0;
  Tick conventional_time = 0;
  for (auto _ : state) {
    KernelOptions kernel_options;
    kernel_options.costs.invocation_send = invocation_cost;
    kernel_options.costs.local_step = 1;
    kernel_options.costs.context_switch = 5;
    kernel_options.costs.cross_node_latency = distributed ? 400 : 0;

    PipelineOptions readonly_options;
    readonly_options.discipline = Discipline::kReadOnly;
    readonly_options.distinct_nodes = distributed;
    readonly_options.work_ahead = 8;
    PipelineRunStats readonly_run = RunPipelineMeasured(
        kernel_options, BenchLines(items), CopyChain(kStages), readonly_options);

    PipelineOptions conventional_options;
    conventional_options.discipline = Discipline::kConventional;
    conventional_options.distinct_nodes = distributed;
    conventional_options.pipe_capacity = 8;
    PipelineRunStats conventional_run =
        RunPipelineMeasured(kernel_options, BenchLines(items), CopyChain(kStages),
                            conventional_options);

    readonly_time = readonly_run.virtual_time;
    conventional_time = conventional_run.virtual_time;
    speedup = static_cast<double>(conventional_time) /
              static_cast<double>(readonly_time);
    benchmark::DoNotOptimize(speedup);
  }
  state.SetItemsProcessed(state.iterations() * items * 2);
  state.counters["readonly_vtime_per_datum"] =
      static_cast<double>(readonly_time) / items;
  state.counters["conventional_vtime_per_datum"] =
      static_cast<double>(conventional_time) / items;
  state.counters["readonly_speedup"] = speedup;
  state.counters["invocation_cost"] = static_cast<double>(invocation_cost);
}
BENCHMARK(BM_CostModelSweep)
    ->ArgsProduct({{1, 10, 100, 1000, 10000}, {0, 1}})
    ->ArgNames({"inv_cost", "distributed"})
    ->Unit(benchmark::kMillisecond);

// Intra-Eject vs inter-Eject cost ratio: the §4 observation that language
// processes and internal queues are far cheaper than invocations — this is
// what makes "merging each passive buffer with its source" profitable.
void BM_LocalVsInvocationCost(benchmark::State& state) {
  int items = 1000;
  PipelineRunStats run;
  for (auto _ : state) {
    PipelineOptions options;
    options.discipline = Discipline::kReadOnly;
    run = RunPipelineMeasured(KernelOptions(), BenchLines(items), CopyChain(3),
                              options);
    benchmark::DoNotOptimize(run.items_out);
  }
  state.SetItemsProcessed(state.iterations() * items);
  state.counters["local_steps_per_datum"] =
      static_cast<double>(run.delta.local_steps) / items;
  state.counters["inv_per_datum"] =
      static_cast<double>(run.delta.invocations_sent) / items;
  // With the default cost model, one invocation costs 100 ticks + bytes
  // while a local step costs 1: the merged design trades messages for steps.
  state.counters["tick_ratio_inv_to_local"] = 100.0;
}
BENCHMARK(BM_LocalVsInvocationCost)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace eden

EDEN_BENCH_MAIN("claim_costmodel")
