// Bench regression gate: diffs BENCH_*.json runs against checked-in
// baselines.
//
//   bench_compare [--threshold=F] [--counters-only] [--metric=NAME] \
//                 BASELINE CURRENT
//
// BASELINE and CURRENT are either two JSON files (compared directly) or two
// directories (every BENCH_*.json present in *both* is compared; baselines
// that never ran are reported but only count as regressions in file mode).
// Exits 0 when nothing regressed, 1 on any regression, 2 on bad usage or
// unreadable/unparseable input — input problems always name the offending
// path on stderr, so a CI log never shows a bare nonzero exit.
//
// Host times are only comparable on one machine, so CI passes
// --counters-only: the repo's counters (inv_per_datum, msgs_per_datum, ...)
// are deterministic identities from the paper, and any drift is a claim
// change that needs an explicit re-baseline.

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/eden/analysis.h"
#include "src/eden/json.h"
#include "src/eden/value.h"

namespace {

namespace fs = std::filesystem;

bool ReadFile(const fs::path& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return false;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  *out = buf.str();
  return true;
}

bool LoadJson(const fs::path& path, eden::Value* out) {
  if (!fs::exists(path)) {
    std::fprintf(stderr, "bench_compare: no such file: %s\n", path.c_str());
    return false;
  }
  std::string text;
  if (!ReadFile(path, &text)) {
    std::fprintf(stderr, "bench_compare: cannot read %s\n", path.c_str());
    return false;
  }
  std::string error;
  std::optional<eden::Value> parsed = eden::JsonParse(text, &error);
  if (!parsed) {
    std::fprintf(stderr, "bench_compare: cannot parse %s: %s\n", path.c_str(),
                 error.c_str());
    return false;
  }
  *out = std::move(*parsed);
  return true;
}

std::vector<std::string> BenchFiles(const fs::path& dir) {
  std::vector<std::string> names;
  for (const auto& entry : fs::directory_iterator(dir)) {
    std::string name = entry.path().filename().string();
    if (entry.is_regular_file() && name.rfind("BENCH_", 0) == 0 &&
        name.size() > 5 && name.substr(name.size() - 5) == ".json") {
      names.push_back(name);
    }
  }
  std::sort(names.begin(), names.end());
  return names;
}

int Usage() {
  std::fprintf(stderr,
               "usage: bench_compare [--threshold=F] [--counters-only] "
               "[--metric=NAME] BASELINE CURRENT\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  eden::BenchCompareOptions options;
  std::vector<std::string> positional;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--threshold=", 0) == 0) {
      options.time_threshold = std::atof(arg.c_str() + 12);
    } else if (arg == "--counters-only") {
      options.counters_only = true;
    } else if (arg.rfind("--metric=", 0) == 0) {
      options.time_metric = arg.substr(9);
    } else if (arg.rfind("--", 0) == 0) {
      return Usage();
    } else {
      positional.push_back(std::move(arg));
    }
  }
  if (positional.size() != 2) {
    return Usage();
  }
  fs::path base_path = positional[0];
  fs::path cur_path = positional[1];

  size_t regressions = 0;
  if (fs::is_directory(base_path) && fs::is_directory(cur_path)) {
    std::vector<std::string> base_files = BenchFiles(base_path);
    std::vector<std::string> cur_files = BenchFiles(cur_path);
    size_t compared = 0;
    for (const std::string& name : base_files) {
      if (std::find(cur_files.begin(), cur_files.end(), name) ==
          cur_files.end()) {
        std::printf("%s: no current run (skipped)\n", name.c_str());
        continue;
      }
      eden::Value base, cur;
      if (!LoadJson(base_path / name, &base) ||
          !LoadJson(cur_path / name, &cur)) {
        return 2;
      }
      eden::BenchComparison cmp = eden::CompareBenchRuns(base, cur, options);
      std::printf("== %s\n%s", name.c_str(), cmp.ToString().c_str());
      regressions += cmp.regressions;
      compared++;
    }
    if (compared == 0) {
      std::fprintf(stderr,
                   "bench_compare: no BENCH_*.json pairs to compare between "
                   "%s and %s\n",
                   base_path.c_str(), cur_path.c_str());
      return 2;
    }
  } else {
    eden::Value base, cur;
    if (!LoadJson(base_path, &base) || !LoadJson(cur_path, &cur)) {
      return 2;
    }
    eden::BenchComparison cmp = eden::CompareBenchRuns(base, cur, options);
    std::printf("%s", cmp.ToString().c_str());
    regressions = cmp.regressions;
  }
  return regressions == 0 ? 0 : 1;
}
