// Experiment C5 — §5 channel-identifier security.
//
// "One way of overcoming this problem is to use UIDs as channel identifiers:
//  because UIDs cannot be forged, the only Ejects which are able to make
//  valid ReadonChannel requests of F are those to which a channel identifier
//  has been given explicitly. The cost of this additional security is that
//  more work is now necessary to connect a sink to its source."
//
// Measured: (a) connection setup cost — integer ids are free, capabilities
// need one OpenChannel round trip per connection; (b) steady-state transfer
// cost — identical (the identifier rides in every Transfer either way, a
// UID being 16 bytes vs 8 for an int); (c) forgery: guessed identifiers are
// rejected without leaking channel existence.
#include "bench/bench_util.h"
#include "src/core/endpoints.h"

namespace eden {
namespace {

void BM_ConnectionSetup(benchmark::State& state) {
  bool capabilities = state.range(0) != 0;
  int connections = 64;
  uint64_t setup_invocations = 0;
  Tick setup_time = 0;
  for (auto _ : state) {
    Kernel kernel;
    VectorSource::Options options;
    options.capability_only_channels = capabilities;
    VectorSource& source =
        kernel.CreateLocal<VectorSource>(BenchLines(4), options);
    Stats before = kernel.stats();
    Tick start = kernel.now();
    for (int i = 0; i < connections; ++i) {
      if (capabilities) {
        InvokeResult r = kernel.InvokeAndRun(
            source.uid(), std::string(kOpOpenChannel),
            Value().Set(std::string(kFieldName), Value(std::string(kChanOut))));
        benchmark::DoNotOptimize(r.ok());
      }
      // Integer/name identifiers need no handshake at all: the connection is
      // just knowledge of "channel 0".
    }
    setup_invocations = (kernel.stats() - before).invocations_sent;
    setup_time = kernel.now() - start;
  }
  state.counters["setup_inv_per_connection"] =
      static_cast<double>(setup_invocations) / connections;
  state.counters["setup_vus_per_connection"] =
      static_cast<double>(setup_time) / connections;
}
BENCHMARK(BM_ConnectionSetup)
    ->Arg(0)
    ->Arg(1)
    ->ArgName("capabilities")
    ->Unit(benchmark::kMillisecond);

void BM_SteadyStateTransfer(benchmark::State& state) {
  bool capabilities = state.range(0) != 0;
  int items = 2000;
  uint64_t invocations = 0;
  uint64_t bytes = 0;
  for (auto _ : state) {
    Kernel kernel;
    VectorSource::Options options;
    options.capability_only_channels = capabilities;
    VectorSource& source =
        kernel.CreateLocal<VectorSource>(BenchLines(items), options);
    Value channel = Value(int64_t{0});
    if (capabilities) {
      channel = Value(*source.server().MintCapability(std::string(kChanOut)));
    }
    Stats before = kernel.stats();
    PullSink& sink = kernel.CreateLocal<PullSink>(source.uid(), channel);
    kernel.RunUntil([&] { return sink.done(); });
    Stats delta = kernel.stats() - before;
    invocations = delta.invocations_sent;
    bytes = delta.total_bytes();
    benchmark::DoNotOptimize(sink.items().size());
  }
  state.SetItemsProcessed(state.iterations() * items);
  state.counters["inv_per_datum"] = static_cast<double>(invocations) / items;
  state.counters["bytes_per_datum"] = static_cast<double>(bytes) / items;
}
BENCHMARK(BM_SteadyStateTransfer)
    ->Arg(0)
    ->Arg(1)
    ->ArgName("capabilities")
    ->Unit(benchmark::kMillisecond);

void BM_ForgeryRejection(benchmark::State& state) {
  int attempts = 256;
  uint64_t rejected = 0;
  for (auto _ : state) {
    Kernel kernel;
    VectorSource::Options options;
    options.capability_only_channels = true;
    VectorSource& source =
        kernel.CreateLocal<VectorSource>(BenchLines(8), options);
    Rng rng(11);
    rejected = 0;
    for (int i = 0; i < attempts; ++i) {
      Value forged = Value(Uid(rng.Next(), rng.Next()));
      InvokeResult r = kernel.InvokeAndRun(source.uid(), "Transfer",
                                           MakeTransferArgs(forged, 1));
      if (r.status.is(StatusCode::kNoSuchChannel)) {
        rejected++;
      }
    }
    benchmark::DoNotOptimize(rejected);
  }
  state.counters["forgeries_rejected"] = static_cast<double>(rejected);
  state.counters["forgeries_attempted"] = static_cast<double>(attempts);
}
BENCHMARK(BM_ForgeryRejection)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace eden

EDEN_BENCH_MAIN("claim_channels")
