// Experiment C4 — §5 fan-in / fan-out asymmetry.
//
// "As we have described it so far, 'read only' transput allows arbitrary
//  fan-in but no fan-out. The dual situation exists with 'write only'
//  transput."
//
// Four configurations, counters report Eject census & messages per datum:
//   fan-in/read-only    cmp over two sources: native (n+2-style, no buffers)
//   fan-in/write-only   needs a passive buffer for the secondary input
//                       ("These secondary inputs will typically be passive
//                        buffers", §5)
//   fan-out/write-only  tee to two sinks: native
//   fan-out/read-only   (a) §5 workaround: secondary output volunteered into
//                       a passive buffer; (b) channel identifiers (Figure 4
//                       solution) with no buffer.
#include "bench/bench_util.h"
#include "src/core/passive_buffer.h"
#include "src/filters/multi_input.h"
#include "src/filters/transforms.h"

namespace eden {
namespace {

// --------------------------------------------------- fan-in, read-only: cmp
void BM_FanInReadOnly(benchmark::State& state) {
  int items = 1000;
  size_t ejects = 0;
  uint64_t invocations = 0;
  size_t out_items = 0;
  for (auto _ : state) {
    Kernel kernel;
    VectorSource& left = kernel.CreateLocal<VectorSource>(BenchLines(items, 1));
    VectorSource& right = kernel.CreateLocal<VectorSource>(BenchLines(items, 2));
    CmpEject& cmp = kernel.CreateLocal<CmpEject>(StreamRef{left.uid()},
                                                 StreamRef{right.uid()});
    PullSink& sink = kernel.CreateLocal<PullSink>(cmp.uid(),
                                                  Value(std::string(kChanOut)));
    kernel.RunUntil([&] { return sink.done(); });
    ejects = kernel.stats().ejects_created;
    invocations = kernel.stats().invocations_sent;
    out_items = sink.items().size();
    benchmark::DoNotOptimize(out_items);
  }
  state.SetItemsProcessed(state.iterations() * items * 2);
  state.counters["ejects"] = static_cast<double>(ejects);  // 4: no buffers
  state.counters["passive_buffers"] = 0;
  state.counters["inv_per_input_datum"] =
      static_cast<double>(invocations) / (2.0 * items);
}
BENCHMARK(BM_FanInReadOnly)->Unit(benchmark::kMillisecond);

// ------------------------------- fan-in, write-only: buffer for 2nd input
// A write-only filter has one primary (pushed) input; its secondary input
// must be staged through a passive buffer which the filter actively reads.
class WriteOnlyCmp : public Eject {
 public:
  WriteOnlyCmp(Kernel& kernel, Uid secondary_source, Uid sink)
      : Eject(kernel, "WriteOnlyCmp"),
        acceptor_(*this),
        secondary_(*this, secondary_source, Value(std::string(kChanOut))),
        out_(*this, sink, Value(std::string(kChanIn))) {
    StreamAcceptor::ChannelOptions in;
    in.capacity = 8;
    acceptor_.DeclareChannel(std::string(kChanIn), in);
    acceptor_.InstallOps();
  }
  void OnStart() override { Spawn(Run()); }

 private:
  Task<void> Run() {
    int64_t differences = 0;
    for (;;) {
      std::optional<Value> a = co_await acceptor_.Next(kChanIn);
      std::optional<Value> b = co_await secondary_.Next();
      if (!a && !b) {
        break;
      }
      if (!a || !b || *a != *b) {
        differences++;
        co_await out_.Write(Value(differences));
      }
      if (!a || !b) {
        break;
      }
    }
    co_await out_.End();
  }

  StreamAcceptor acceptor_;
  StreamReader secondary_;
  StreamWriter out_;
};

void BM_FanInWriteOnly(benchmark::State& state) {
  int items = 1000;
  size_t ejects = 0;
  uint64_t invocations = 0;
  for (auto _ : state) {
    Kernel kernel;
    PushSource& primary = kernel.CreateLocal<PushSource>(BenchLines(items, 1));
    // The secondary input staged through a passive buffer (filled by an
    // active producer), per §5.
    PushSource& secondary_producer =
        kernel.CreateLocal<PushSource>(BenchLines(items, 2));
    PassiveBuffer& staging = kernel.CreateLocal<PassiveBuffer>();
    secondary_producer.BindOutput(staging.uid(), Value(std::string(kChanIn)));

    PushSink& sink = kernel.CreateLocal<PushSink>();
    WriteOnlyCmp& cmp =
        kernel.CreateLocal<WriteOnlyCmp>(staging.uid(), sink.uid());
    primary.BindOutput(cmp.uid(), Value(std::string(kChanIn)));

    kernel.RunUntil([&] { return sink.done(); });
    ejects = kernel.stats().ejects_created;
    invocations = kernel.stats().invocations_sent;
    benchmark::DoNotOptimize(ejects);
  }
  state.SetItemsProcessed(state.iterations() * items * 2);
  state.counters["ejects"] = static_cast<double>(ejects);  // 5: buffer added
  state.counters["passive_buffers"] = 1;
  state.counters["inv_per_input_datum"] =
      static_cast<double>(invocations) / (2.0 * items);
}
BENCHMARK(BM_FanInWriteOnly)->Unit(benchmark::kMillisecond);

// ---------------------------------------------- fan-out, write-only: native
void BM_FanOutWriteOnly(benchmark::State& state) {
  int items = 1000;
  size_t ejects = 0;
  uint64_t invocations = 0;
  for (auto _ : state) {
    Kernel kernel;
    PushSource& source = kernel.CreateLocal<PushSource>(BenchLines(items));
    WriteOnlyFilter& tee =
        kernel.CreateLocal<WriteOnlyFilter>(std::make_unique<TeeTransform>());
    PushSink& a = kernel.CreateLocal<PushSink>();
    PushSink& b = kernel.CreateLocal<PushSink>();
    tee.BindOutput(std::string(kChanOut), a.uid(), Value(std::string(kChanIn)));
    tee.BindOutput("copy", b.uid(), Value(std::string(kChanIn)));
    source.BindOutput(tee.uid(), Value(std::string(kChanIn)));
    kernel.RunUntil([&] { return a.done() && b.done(); });
    ejects = kernel.stats().ejects_created;
    invocations = kernel.stats().invocations_sent;
    benchmark::DoNotOptimize(ejects);
  }
  state.SetItemsProcessed(state.iterations() * items);
  state.counters["ejects"] = static_cast<double>(ejects);  // 4
  state.counters["passive_buffers"] = 0;
  state.counters["inv_per_datum"] = static_cast<double>(invocations) / items;
}
BENCHMARK(BM_FanOutWriteOnly)->Unit(benchmark::kMillisecond);

// ------------------- fan-out, read-only (a): §5 passive-buffer workaround
// "secondary output is volunteered in Write invocations ... Typically these
// outputs will be directed into passive buffers, which will then be sources
// for other pipelines. This amounts to abandoning the 'read only' nature."
class ReadOnlyTeeWithVolunteeredSecondary : public Eject {
 public:
  ReadOnlyTeeWithVolunteeredSecondary(Kernel& kernel, Uid source, Uid buffer)
      : Eject(kernel, "HybridTee"),
        reader_(*this, source, Value(std::string(kChanOut))),
        server_(*this),
        secondary_(*this, buffer, Value(std::string(kChanIn))) {
    server_.DeclareChannel(std::string(kChanOut));
    server_.InstallOps();
  }
  void OnStart() override { Spawn(Run()); }

 private:
  Task<void> Run() {
    for (;;) {
      std::optional<Value> item = co_await reader_.Next();
      if (!item) {
        break;
      }
      co_await server_.Write(kChanOut, *item);     // primary: passive output
      co_await secondary_.Write(std::move(*item));  // secondary: ACTIVE write
    }
    server_.CloseAll();
    co_await secondary_.End();
  }

  StreamReader reader_;
  StreamServer server_;
  StreamWriter secondary_;
};

void BM_FanOutReadOnlyViaBuffer(benchmark::State& state) {
  int items = 1000;
  size_t ejects = 0;
  uint64_t invocations = 0;
  for (auto _ : state) {
    Kernel kernel;
    VectorSource& source = kernel.CreateLocal<VectorSource>(BenchLines(items));
    PassiveBuffer& buffer = kernel.CreateLocal<PassiveBuffer>();
    ReadOnlyTeeWithVolunteeredSecondary& tee =
        kernel.CreateLocal<ReadOnlyTeeWithVolunteeredSecondary>(source.uid(),
                                                                buffer.uid());
    PullSink& a = kernel.CreateLocal<PullSink>(tee.uid(),
                                               Value(std::string(kChanOut)));
    PullSink& b = kernel.CreateLocal<PullSink>(buffer.uid(),
                                               Value(std::string(kChanOut)));
    kernel.RunUntil([&] { return a.done() && b.done(); });
    ejects = kernel.stats().ejects_created;
    invocations = kernel.stats().invocations_sent;
    benchmark::DoNotOptimize(ejects);
  }
  state.SetItemsProcessed(state.iterations() * items);
  state.counters["ejects"] = static_cast<double>(ejects);  // 5: buffer re-added
  state.counters["passive_buffers"] = 1;
  state.counters["inv_per_datum"] = static_cast<double>(invocations) / items;
}
BENCHMARK(BM_FanOutReadOnlyViaBuffer)->Unit(benchmark::kMillisecond);

// --------------- fan-out, read-only (b): channel identifiers (Figure 4 fix)
void BM_FanOutReadOnlyViaChannels(benchmark::State& state) {
  int items = 1000;
  size_t ejects = 0;
  uint64_t invocations = 0;
  for (auto _ : state) {
    Kernel kernel;
    VectorSource& source = kernel.CreateLocal<VectorSource>(BenchLines(items));
    ReadOnlyFilter::Options options;
    options.source = source.uid();
    ReadOnlyFilter& tee = kernel.CreateLocal<ReadOnlyFilter>(
        std::make_unique<TeeTransform>(), options);
    PullSink& a = kernel.CreateLocal<PullSink>(tee.uid(),
                                               Value(std::string(kChanOut)));
    PullSink& b = kernel.CreateLocal<PullSink>(tee.uid(), Value("copy"));
    kernel.RunUntil([&] { return a.done() && b.done(); });
    ejects = kernel.stats().ejects_created;
    invocations = kernel.stats().invocations_sent;
    benchmark::DoNotOptimize(ejects);
  }
  state.SetItemsProcessed(state.iterations() * items);
  state.counters["ejects"] = static_cast<double>(ejects);  // 4: no buffer
  state.counters["passive_buffers"] = 0;
  state.counters["inv_per_datum"] = static_cast<double>(invocations) / items;
}
BENCHMARK(BM_FanOutReadOnlyViaChannels)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace eden

EDEN_BENCH_MAIN("claim_fan")
