// Ablation A1 — the three §3 interpretations of ! and ?.
//
// "This interaction may be regarded in several different ways. Both ! and ?
//  may be regarded as active, and the interpreter as the passive connection
//  ... Alternatively, input may be regarded as active ... The converse
//  interpretation is also possible."                             (paper §3)
//
// One 2-filter pipeline, three realizations:
//   csp         both sides active; a CspChannel Eject at each junction
//               (3 junctions -> 3 channel Ejects; Send+Receive per datum)
//   read-only   input active, output passive (the paper's choice)
//   write-only  output active, input passive (the dual)
//
// The rendezvous interpretation matches the conventional discipline's
// message bill (2 per junction) while buffering nothing — the asymmetric
// disciplines halve it.
#include "bench/bench_util.h"
#include "src/core/rendezvous.h"

namespace eden {
namespace {

// Forwards items between two CSP channels applying no transformation.
class CspForwarder : public Eject {
 public:
  CspForwarder(Kernel& kernel, Uid in, Uid out)
      : Eject(kernel, "CspForwarder"), in_(in), out_(out) {}
  void OnStart() override { Spawn(Run()); }

 private:
  Task<void> Run() {
    for (;;) {
      InvokeResult r = co_await Invoke(in_, "Receive", Value());
      if (!r.ok() || r.value.Field("end").BoolOr(false)) {
        break;
      }
      (void)co_await Invoke(out_, "Send", Value().Set("item", r.value.Field("item")));
    }
    (void)co_await Invoke(out_, "Close", Value());
  }

  Uid in_;
  Uid out_;
};

// Feeds a vector into a CSP channel.
class CspProducer : public Eject {
 public:
  CspProducer(Kernel& kernel, ValueList items, Uid out)
      : Eject(kernel, "CspProducer"), items_(std::move(items)), out_(out) {}
  void OnStart() override { Spawn(Run()); }

 private:
  Task<void> Run() {
    for (Value& item : items_) {
      (void)co_await Invoke(out_, "Send", Value().Set("item", std::move(item)));
    }
    (void)co_await Invoke(out_, "Close", Value());
  }

  ValueList items_;
  Uid out_;
};

// Drains a CSP channel.
class CspConsumer : public Eject {
 public:
  CspConsumer(Kernel& kernel, Uid in) : Eject(kernel, "CspConsumer"), in_(in) {}
  void OnStart() override { Spawn(Run()); }
  bool done() const { return done_; }
  size_t count() const { return count_; }

 private:
  Task<void> Run() {
    for (;;) {
      InvokeResult r = co_await Invoke(in_, "Receive", Value());
      if (!r.ok() || r.value.Field("end").BoolOr(false)) {
        break;
      }
      count_++;
    }
    done_ = true;
  }

  Uid in_;
  bool done_ = false;
  size_t count_ = 0;
};

void BM_CspInterpretation(benchmark::State& state) {
  int items = 1000;
  uint64_t invocations = 0;
  size_t ejects = 0;
  Tick vtime = 0;
  for (auto _ : state) {
    Kernel kernel;
    // producer -> c0 -> F1 -> c1 -> F2 -> c2 -> consumer
    CspChannel& c0 = kernel.CreateLocal<CspChannel>();
    CspChannel& c1 = kernel.CreateLocal<CspChannel>();
    CspChannel& c2 = kernel.CreateLocal<CspChannel>();
    kernel.CreateLocal<CspProducer>(BenchLines(items), c0.uid());
    kernel.CreateLocal<CspForwarder>(c0.uid(), c1.uid());
    kernel.CreateLocal<CspForwarder>(c1.uid(), c2.uid());
    CspConsumer& consumer = kernel.CreateLocal<CspConsumer>(c2.uid());
    kernel.RunUntil([&] { return consumer.done(); });
    invocations = kernel.stats().invocations_sent;
    ejects = kernel.stats().ejects_created;
    vtime = kernel.now();
    benchmark::DoNotOptimize(consumer.count());
  }
  state.SetItemsProcessed(state.iterations() * items);
  state.counters["inv_per_datum"] = static_cast<double>(invocations) / items;
  state.counters["ejects"] = static_cast<double>(ejects);
  state.counters["vus_per_datum"] = static_cast<double>(vtime) / items;
}
BENCHMARK(BM_CspInterpretation)->Unit(benchmark::kMillisecond);

void RunDiscipline(benchmark::State& state, Discipline discipline) {
  int items = 1000;
  PipelineRunStats run;
  for (auto _ : state) {
    PipelineOptions options;
    options.discipline = discipline;
    run = RunPipelineMeasured(KernelOptions(), BenchLines(items), CopyChain(2),
                              options);
    benchmark::DoNotOptimize(run.items_out);
  }
  state.SetItemsProcessed(state.iterations() * items);
  state.counters["inv_per_datum"] =
      static_cast<double>(run.delta.invocations_sent) / items;
  state.counters["ejects"] = static_cast<double>(run.ejects);
  state.counters["vus_per_datum"] = static_cast<double>(run.virtual_time) / items;
}

void BM_ReadOnlyInterpretation(benchmark::State& state) {
  RunDiscipline(state, Discipline::kReadOnly);
}
void BM_WriteOnlyInterpretation(benchmark::State& state) {
  RunDiscipline(state, Discipline::kWriteOnly);
}
BENCHMARK(BM_ReadOnlyInterpretation)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_WriteOnlyInterpretation)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace eden

EDEN_BENCH_MAIN("ablation_csp")
