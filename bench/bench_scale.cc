// Experiment SCALE — shard-count sweep over a wide multi-node topology.
//
// The sharded kernel's pitch (DESIGN.md "Sharded kernel") is that inter-node
// invocation latency is free lookahead: partition nodes across workers and
// conservative windows keep per-seed output byte-identical while the wall
// clock drops. This bench measures exactly that claim: the same workload —
// `pipelines` independent read-only chains, every Eject on its own node —
// run at 1/2/4/8 shards.
//
// Counters split into two families:
//   - Deterministic identities (ejects, events, inv_per_datum,
//     virtual_us_per_datum): shard-count-invariant by the determinism
//     contract, compared strictly by bench_compare --counters-only.
//   - Wall-clock rates (*_per_second), the profiler-derived wall_*
//     efficiency columns, and the telemetry-derived peak_rate_* / topk_*
//     columns: advisory facts next to the virtual ones, excluded from the
//     counter gate (IsStandardBenchField). Speedup at 8 shards is the
//     events_per_second ratio to the 1-shard row — meaningful only on a
//     multi-core host; single-core CI runs still check the identities.
//
// Each row runs under a ShardProfiler and reports the parallel verdict
// (wall_speedup / wall_efficiency / wall_serial_fraction, from
// DiagnoseParallel); the per-shard wall-clock timeline is written to
// PROFILE_scale_p<pipelines>_s<shards>.json (Perfetto JSON, loadable in
// ui.perfetto.dev next to the virtual-time trace export).
//
// The pipelines:16384 rows build a ~100k-Eject topology (16384 chains of 6
// Ejects); CI smokes the pipelines:64 rows only (see ci.yml), so the
// checked-in baseline carries just those.
// The partitioned:1 rows re-run the same workload with every chain pinned to
// one shard (PipelineOptions::partition_shard, the fix ASC011 points at):
// cross_shard_sends collapses to zero while every identity column — and the
// determinism certificate — stays exactly the sweep's. Each row runs under a
// ShardRaceAnalyzer; the audit_* columns carry its event count and violation
// count (certificates, excluded from the counter gate), and the benchmark
// itself asserts the merged digest is identical across all shard counts and
// both placements of one workload, failing the row on any mismatch.
#include <chrono>
#include <map>
#include <string>

#include "bench/bench_util.h"
#include "src/eden/trace_export.h"
#include "src/eden/verify/shard_audit.h"

namespace eden {
namespace {

struct ScaleResult {
  uint64_t events = 0;
  uint64_t invocations = 0;
  uint64_t cross_shard_sends = 0;
  Tick virtual_time = 0;
  size_t ejects = 0;
  size_t items_out = 0;
  double run_seconds = 0;  // kernel Run() only; build time excluded
};

ScaleResult RunScaleSweep(int shards, int pipelines, int items, size_t depth,
                          bool partitioned, ShardProfiler* profiler,
                          TelemetrySampler* telemetry,
                          verify::RunDigest* digest_out) {
  KernelOptions kernel_options;
  kernel_options.shards = shards;
  Kernel kernel(kernel_options);
  verify::ShardRaceAnalyzer auditor;
  kernel.set_auditor(&auditor);
  if (profiler != nullptr) {
    kernel.set_profiler(profiler);
  }
  if (telemetry != nullptr) {
    telemetry->Clear();
    kernel.set_telemetry(telemetry);
  }
  PipelineOptions options;
  options.discipline = Discipline::kReadOnly;
  options.distinct_nodes = true;
  options.work_ahead = 4;
  std::vector<TransformFactory> chain = CopyChain(depth);
  std::vector<PipelineHandle> handles;
  handles.reserve(static_cast<size_t>(pipelines));
  for (int p = 0; p < pipelines; ++p) {
    // Partitioned placement: chain p lives entirely on shard p % shards, so
    // stage-to-stage traffic never crosses a shard while the chains still
    // spread evenly over the workers.
    options.partition_shard = partitioned ? p % shards : -1;
    handles.push_back(
        BuildPipeline(kernel, BenchLines(items, 83 + static_cast<uint64_t>(p)),
                      chain, options));
  }
  Stats before = kernel.stats();
  auto wall_start = std::chrono::steady_clock::now();
  // Independent chains all drain to quiescence; no predicate scan over
  // thousands of handles per event.
  kernel.Run();
  auto wall_end = std::chrono::steady_clock::now();

  ScaleResult result;
  Stats delta = kernel.stats() - before;
  result.invocations = delta.invocations_sent;
  result.virtual_time = kernel.now();
  result.ejects = kernel.stats().ejects_created;
  for (const ShardCounters& c : kernel.shard_counters()) {
    result.events += c.events_processed;
    result.cross_shard_sends += c.cross_shard_sends;
  }
  for (const PipelineHandle& handle : handles) {
    result.items_out += handle.output().size();
  }
  result.run_seconds =
      std::chrono::duration<double>(wall_end - wall_start).count();
  if (digest_out != nullptr) {
    *digest_out = auditor.Digest();
  }
  return result;
}

void BM_ScaleShardSweep(benchmark::State& state) {
  const int pipelines = static_cast<int>(state.range(0));
  const int shards = static_cast<int>(state.range(1));
  const bool partitioned = state.range(2) != 0;
  const int items = 4;
  const size_t depth = 4;
  ScaleResult last{};
  double run_seconds = 0;
  ShardProfiler profiler;
  TelemetrySampler telemetry;
  verify::RunDigest digest;
  for (auto _ : state) {
    last = RunScaleSweep(shards, pipelines, items, depth, partitioned,
                         &profiler, &telemetry, &digest);
    run_seconds += last.run_seconds;
    benchmark::DoNotOptimize(last.items_out);
  }
  // The dual-run comparison, in-bench: one workload (keyed by `pipelines`
  // alone — neither the shard count nor the placement is allowed to matter)
  // must produce the same certificate on every row. Benchmarks run
  // sequentially, so a plain static map across rows is safe.
  static std::map<int, verify::RunDigest> expected_by_workload;
  auto it = expected_by_workload.emplace(pipelines, digest).first;
  std::string mismatch = verify::RunDigest::Compare(it->second, digest);
  if (!mismatch.empty()) {
    state.SkipWithError(("determinism " + mismatch).c_str());
    return;
  }
  if (!digest.certified()) {
    state.SkipWithError(("shard audit: " + std::to_string(digest.violations) +
                         " violation(s)")
                            .c_str());
    return;
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(last.items_out));
  // Deterministic identities: must match the baseline at every shard count.
  state.counters["ejects"] = static_cast<double>(last.ejects);
  state.counters["events"] = static_cast<double>(last.events);
  state.counters["inv_per_datum"] = static_cast<double>(last.invocations) /
                                    static_cast<double>(last.items_out);
  state.counters["virtual_us_per_datum"] =
      static_cast<double>(last.virtual_time) /
      static_cast<double>(last.items_out);
  state.counters["cross_shard_sends"] = static_cast<double>(last.cross_shard_sends);
  // Determinism-audit columns (audit_ prefix keeps them out of the counter
  // gate; the digest equality above is the real assertion).
  state.counters["audit_events"] = static_cast<double>(digest.events);
  state.counters["audit_violations"] = static_cast<double>(digest.violations);
  // Wall-clock rates (excluded from the counter gate by the _per_second
  // suffix): the speedup claim reads down this column.
  double total_events =
      static_cast<double>(last.events) * static_cast<double>(state.iterations());
  state.counters["events_per_second"] =
      run_seconds > 0 ? total_events / run_seconds : 0;
  state.counters["invocations_per_second"] =
      run_seconds > 0 ? static_cast<double>(last.invocations) *
                            static_cast<double>(state.iterations()) / run_seconds
                      : 0;
  // Profiler-derived efficiency columns (wall_* prefix keeps them out of the
  // counter gate too). A 1-shard row has no parallel windows: identity values.
  ParallelVerdict verdict = DiagnoseParallel(profiler);
  state.counters["wall_speedup"] = verdict.valid ? verdict.speedup : 1.0;
  state.counters["wall_efficiency"] = verdict.valid ? verdict.efficiency : 1.0;
  state.counters["wall_serial_fraction"] =
      verdict.valid ? verdict.serial_fraction : 1.0;
  state.counters["wall_imbalance_pct"] =
      verdict.valid ? verdict.imbalance_pct : 0.0;
  // Telemetry columns (peak_rate_* / topk_* prefixes keep them out of the
  // counter gate): the peak-window invocation rate on the virtual-time axis
  // and the Space-Saving sketch's hottest stage. Shard-count-invariant by
  // the merged-observation-stream contract, but advisory, not gated.
  TelemetryVerdict tv = DiagnoseTelemetry(telemetry);
  state.counters["peak_rate_invoke"] = tv.valid ? tv.peak_rate : 0.0;
  state.counters["peak_rate_window"] =
      tv.valid ? static_cast<double>(tv.peak_window) : -1.0;
  state.counters["topk_hot_count"] = static_cast<double>(tv.hot_count);
  state.counters["topk_hot_error"] = static_cast<double>(tv.hot_error);
  // The per-shard wall timeline for this row, for ui.perfetto.dev.
  if (!partitioned) {
    ShardProfileExporter(profiler).WriteFile("PROFILE_scale_p" +
                                             std::to_string(pipelines) + "_s" +
                                             std::to_string(shards) + ".json");
  }
}
BENCHMARK(BM_ScaleShardSweep)
    ->ArgsProduct({{64, 16384}, {1, 2, 4, 8}, {0, 1}})
    ->ArgNames({"pipelines", "shards", "partitioned"})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

}  // namespace
}  // namespace eden

EDEN_BENCH_MAIN("scale")
